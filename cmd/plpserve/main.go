// Command plpserve is the simulation job service: a JSON HTTP API over
// an asynchronous job queue (internal/jobs) running recording sweeps,
// reproduced experiments, and crash-injection campaigns, with live
// telemetry while the simulators execute — plus the standard Go
// observability endpoints (expvar at /debug/vars, pprof at
// /debug/pprof/) for watching the *simulator process* itself.
//
// Job API:
//
//	POST   /jobs              submit a job spec; 202 + Location,
//	                          400 invalid, 429 queue full, 503 draining
//	GET    /jobs              list all jobs with status
//	GET    /jobs/{id}         one job's status (?telemetry=1 embeds series)
//	DELETE /jobs/{id}         cancel; 404 unknown, 409 already finished
//	GET    /jobs/{id}/result  finished payload; 409 while running
//	GET    /jobs/{id}/trace   finished span tree (?format=jsonl for lines)
//	GET    /healthz           liveness
//	GET    /readyz            readiness; 503 once draining
//
// Legacy live view (fed by whatever sweep jobs run):
//
//	/                        minimal HTML sparkline view of all runs
//	/runs                    JSON list of runs (sorted) with status
//	/timeseries?scheme=&bench=   one run's telemetry series as JSON
//
// Distributed sweep fabric (internal/fabric):
//
//	GET  /version           build fingerprint: module, go version,
//	                        supported scheme set (worker compat check)
//	-coordinator            run the coordinator role; "distsweep" jobs
//	                        shard across joined workers (POST /fabric/
//	                        register|heartbeat, GET /fabric/state)
//	-join host:port         run the worker role against a coordinator
//	                        (serves POST /fabric/run)
//	-fabric-workers N       (with -coordinator) fork N local worker
//	                        processes — the single-binary mode CI and
//	                        laptops use to exercise the whole fabric
//
// SIGTERM/SIGINT drain gracefully: intake stops (new submissions get
// 503), queued and running jobs finish, then the process exits. A
// second signal — or the -drain-timeout deadline — cancels the
// remaining jobs instead of waiting them out.
//
// Usage:
//
//	plpserve -addr :8090
//	plpserve -sweep -instr 50000000 -benches gamess,gcc -o sweep.json
//	curl -s localhost:8090/jobs -d '{"kind":"sweep","benches":["gcc"]}'
//	plpserve -coordinator -fabric-workers 3
//	curl -s localhost:8090/jobs -d '{"kind":"distsweep","benches":["gcc"]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"plp/internal/fabric"
	"plp/internal/harness"
	"plp/internal/jobs"
	"plp/internal/metrics"
	"plp/internal/obs"
	"plp/internal/registry"
	"plp/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "HTTP listen address")
		mAddr    = flag.String("metrics-addr", "", "serve /metrics on a separate listener (default: /metrics on -addr)")
		workers  = flag.Int("workers", 2, "concurrent jobs")
		queue    = flag.Int("queue", 16, "job queue depth (submissions beyond it get 429)")
		parallel = flag.Int("parallel", 0, "per-job sweep worker goroutines (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "default per-job deadline (0 = unbounded)")
		drainT   = flag.Duration("drain-timeout", 2*time.Minute, "max graceful-drain wait on shutdown")
		memoMB   = flag.Uint64("memo-mb", 512, "sweep-point memo bound in MB shared by all jobs (0 = off)")
		traceMB  = flag.Uint64("trace-cache-mb", 256, "trace batch cache bound in MB shared by all jobs (0 = off)")

		logLevel  = flag.String("log-level", "info", "structured log level: debug, info, warn, error, off")
		logFormat = flag.String("log-format", "text", "structured log format: text or json (stderr)")
		traceCap  = flag.Int("trace-capacity", 0, "finished job traces retained for /jobs/{id}/trace (0 = default 256)")
		traceOut  = flag.String("trace-jsonl", "", "append every finished job's spans to this JSONL file")

		coordRole = flag.Bool("coordinator", false, "run the distributed sweep fabric coordinator: distsweep jobs shard across joined workers")
		join      = flag.String("join", "", "join the fabric coordinator at this host:port as a worker")
		fabricN   = flag.Int("fabric-workers", 0, "(with -coordinator) fork this many local worker processes, so one binary exercises the whole fabric")
		advertise = flag.String("advertise", "", "dial-back host:port a worker advertises to the coordinator (default: the bound -addr with a 127.0.0.1 host)")

		sweep    = flag.Bool("sweep", false, "submit an initial recording sweep job on startup")
		instr    = flag.Uint64("instr", 10_000_000, "initial sweep: instructions per benchmark run")
		warmup   = flag.Uint64("warmup", 0, "initial sweep: warm-up instructions per run (checkpointed once per benchmark)")
		benches  = flag.String("benches", "", "initial sweep: comma-separated benchmark subset (default all 15)")
		schemes  = flag.String("schemes", "", "initial sweep: comma-separated scheme subset (default the six evaluated)")
		full     = flag.Bool("full", false, "initial sweep: full-memory protection")
		interval = flag.Uint64("interval", 0, "initial sweep: telemetry window width in cycles (0 = default)")
		out      = flag.String("o", "", "initial sweep: also write the finished sweep to this registry file")
	)
	flag.Parse()

	if *join != "" && *coordRole {
		fmt.Fprintln(os.Stderr, "plpserve: -join and -coordinator are exclusive roles")
		os.Exit(2)
	}
	if *fabricN > 0 && !*coordRole {
		fmt.Fprintln(os.Stderr, "plpserve: -fabric-workers requires -coordinator")
		os.Exit(2)
	}

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plpserve: %v\n", err)
		os.Exit(2)
	}
	// The tracer does not get the logger: the job service already logs
	// every lifecycle edge itself, and giving both the same sink would
	// double every record.
	obsCfg := obs.Config{Capacity: *traceCap}
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plpserve: -trace-jsonl: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		obsCfg.JSONL = f
	}

	// The memoization stack shared by every job this instance runs:
	// repeated sweep points hit the memo, every scheme of a warmed
	// sweep resumes one per-benchmark checkpoint, and trace batches
	// generate once. All counters surface on /metrics.
	var memo *harness.Memo
	var traces *trace.Store
	if *memoMB > 0 {
		memo = harness.NewMemo(*memoMB << 20)
	}
	if *traceMB > 0 {
		traces = trace.NewStore(*traceMB << 20)
	}

	probe := &harness.PoolProbe{}
	// stack is this instance's local execution environment, shared by
	// the job service and (per role) the fabric worker or the
	// coordinator's no-workers-left fallback.
	stack := fabric.Stack{Memo: memo, Traces: traces, Probe: probe, Parallel: *parallel}

	var mkCoord func(*metrics.Registry) *fabric.Coordinator
	if *coordRole {
		mkCoord = func(reg *metrics.Registry) *fabric.Coordinator {
			return fabric.NewCoordinator(fabric.CoordinatorConfig{
				Local:   stack,
				Metrics: reg,
				Log:     logger,
			})
		}
	}

	var initialID string
	api := newServerWithFabric(jobs.Config{
		QueueDepth:     *queue,
		Workers:        *workers,
		RunParallel:    *parallel,
		DefaultTimeout: *timeout,
		Memo:           memo,
		Traces:         traces,
		Probe:          probe,
		Tracer:         obs.New(obsCfg),
		Log:            logger,
		OnFinish: func(j *jobs.Job) {
			if j.ID() != initialID || *out == "" {
				return
			}
			res := j.Result()
			if res == nil || res.Sweep == nil {
				fmt.Fprintf(os.Stderr, "plpserve: initial sweep %s, not writing %s\n", j.State(), *out)
				return
			}
			if err := registry.Write(*out, res.Sweep); err != nil {
				fmt.Fprintf(os.Stderr, "plpserve: %v\n", err)
			} else {
				fmt.Printf("plpserve: sweep written to %s\n", *out)
			}
		},
	}, mkCoord)
	svc := api.svc

	if *sweep || *out != "" {
		spec := jobs.Spec{
			Kind:         jobs.KindSweep,
			Instructions: *instr,
			Warmup:       *warmup,
			FullMemory:   *full,
			Interval:     *interval,
		}
		if *benches != "" {
			spec.Benches = strings.Split(*benches, ",")
		}
		if *schemes != "" {
			spec.Schemes = strings.Split(*schemes, ",")
		}
		j, err := svc.Submit(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plpserve: initial sweep: %v\n", err)
			os.Exit(1)
		}
		initialID = j.ID()
		fmt.Printf("plpserve: initial sweep submitted as job %s (%d instructions/run)\n", j.ID(), *instr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// Listen explicitly (not ListenAndServe) so `-addr :0` works for
	// scripts and tests: the actually-bound address prints as one
	// parseable `plpserve: addr=<host:port>` line before any request is
	// served, eliminating port-discovery races.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plpserve: %v\n", err)
		os.Exit(1)
	}
	bound := dialableAddr(ln.Addr())
	fmt.Printf("plpserve: addr=%s\n", bound)

	errc := make(chan error, 1)
	if *mAddr != "" {
		// A dedicated scrape listener: the Prometheus exposition stays
		// reachable (and firewallable) separately from the job API.
		mln, err := net.Listen("tcp", *mAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plpserve: -metrics-addr: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("plpserve: metrics-addr=%s\n", dialableAddr(mln.Addr()))
		mm := http.NewServeMux()
		mm.Handle("GET /metrics", api.m.reg.Handler())
		go func() { errc <- http.Serve(mln, mm) }()
	}

	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = bound
		}
		w := fabric.NewWorker(fabric.WorkerConfig{
			Addr:        adv,
			Coordinator: *join,
			Stack:       stack,
			Tracer:      api.tr,
			Log:         logger,
		})
		// Assigned before handler() below builds the mux, so the unit
		// endpoint mounts; the join/heartbeat loop runs until shutdown.
		api.worker = w
		go w.Run(ctx)
		fmt.Printf("plpserve: fabric worker advertising %s to coordinator %s\n", adv, *join)
	}

	srv := &http.Server{Handler: withDebug(api.handler())}
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("plpserve: listening on %s (%d workers, queue %d)\n", bound, *workers, *queue)

	children := spawnFabricWorkers(*fabricN, bound, *logLevel, *logFormat)
	defer stopFabricWorkers(children)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "plpserve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	fmt.Println("plpserve: draining (signal again to force exit)")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if cut, err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "plpserve: drain: %v (cancelled %d jobs: %s)\n",
			err, len(cut), strings.Join(cut, ", "))
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "plpserve: shutdown: %v\n", err)
	}
	fmt.Println("plpserve: drained, exiting")
}

// withDebug layers the default mux's debug endpoints (expvar, pprof —
// both register on http.DefaultServeMux via side effect) under /debug/
// while everything else goes to the API mux.
func withDebug(api http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/debug/") {
			http.DefaultServeMux.ServeHTTP(w, r)
			return
		}
		api.ServeHTTP(w, r)
	})
}
