package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"plp/internal/fabric"
	"plp/internal/harness"
	"plp/internal/jobs"
	"plp/internal/metrics"
	"plp/internal/registry"
)

func TestVersionEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /version: %d", resp.StatusCode)
	}
	var v fabric.VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.GoVersion == "" || v.Module == "" {
		t.Fatalf("version info incomplete: %+v", v)
	}
	if want := fabric.SupportedSchemes(); len(v.Schemes) != len(want) {
		t.Fatalf("schemes = %v, want all %d registered", v.Schemes, len(want))
	}
}

func TestDialableAddr(t *testing.T) {
	tests := []struct{ in, want string }{
		{"0.0.0.0:8090", "127.0.0.1:8090"},
		{"[::]:8090", "127.0.0.1:8090"},
		{"127.0.0.1:8090", "127.0.0.1:8090"},
		{"10.1.2.3:80", "10.1.2.3:80"},
	}
	for _, tc := range tests {
		a, err := net.ResolveTCPAddr("tcp", tc.in)
		if err != nil {
			t.Fatalf("%s: %v", tc.in, err)
		}
		if got := dialableAddr(a); got != tc.want {
			t.Errorf("dialableAddr(%s) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

// startWorkerServer brings up a full plpserve-style worker instance
// (the same handler() wiring main uses) joined to coordAddr.
func startWorkerServer(t *testing.T, ctx context.Context, coordAddr string) {
	t.Helper()
	api := newServer(jobs.Config{Workers: 1})
	ts := httptest.NewUnstartedServer(nil)
	w := fabric.NewWorker(fabric.WorkerConfig{
		Addr:        ts.Listener.Addr().String(),
		Coordinator: coordAddr,
	})
	api.worker = w
	ts.Config.Handler = api.handler()
	ts.Start()
	t.Cleanup(ts.Close)
	go w.Run(ctx)
}

// TestDistSweepOverHTTP is the end-to-end service test: a coordinator
// instance and two worker instances (each the full plpserve handler
// stack), a distsweep job submitted over HTTP, and the merged result
// checked identical to a direct single-process Record.
func TestDistSweepOverHTTP(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)

	coord := newServerWithFabric(jobs.Config{Workers: 1},
		func(reg *metrics.Registry) *fabric.Coordinator {
			return fabric.NewCoordinator(fabric.CoordinatorConfig{Metrics: reg})
		})
	cts := httptest.NewServer(coord.handler())
	t.Cleanup(func() {
		cts.Close()
		dctx, dcancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer dcancel()
		_, _ = coord.svc.Drain(dctx)
	})
	coordAddr := strings.TrimPrefix(cts.URL, "http://")

	startWorkerServer(t, ctx, coordAddr)
	startWorkerServer(t, ctx, coordAddr)
	deadline := time.Now().Add(10 * time.Second)
	for coord.coord.LiveWorkers() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("workers did not register: %d live", coord.coord.LiveWorkers())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The fabric state endpoint lists both workers.
	var st fabric.State
	resp, err := http.Get(cts.URL + fabric.PathState)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Workers) != 2 {
		t.Fatalf("fabric state workers = %+v, want 2", st.Workers)
	}

	_, jst := postJob(t, cts,
		`{"kind":"distsweep","benches":["gamess","gcc"],"instructions":40000,"noTelemetry":true}`)
	if jst.ID == "" {
		t.Fatal("submit returned no job ID")
	}
	for end := time.Now().Add(120 * time.Second); ; {
		s := getStatus(t, cts, jst.ID)
		if s.State.Terminal() {
			if s.State != jobs.StateSucceeded {
				t.Fatalf("job %s: %s (%s)", jst.ID, s.State, s.Error)
			}
			break
		}
		if time.Now().After(end) {
			t.Fatalf("job %s did not finish: %s", jst.ID, s.State)
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err = http.Get(cts.URL + "/jobs/" + jst.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: %d", resp.StatusCode)
	}
	var res registry.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Sweep == nil {
		t.Fatal("distsweep result has no sweep payload")
	}

	o := harness.RecordOptions{
		Options:     harness.Options{Instructions: 40_000, Benches: []string{"gamess", "gcc"}},
		NoTelemetry: true,
	}
	direct := registry.New("direct", o.Instructions, false)
	direct.Runs = harness.Record(o)
	direct.Sort()
	if diffs := registry.Identical(direct, res.Sweep); len(diffs) != 0 {
		t.Fatalf("HTTP distsweep differs from direct Record:\n%s", strings.Join(diffs, "\n"))
	}
}
