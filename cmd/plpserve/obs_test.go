package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"plp/internal/jobs"
	"plp/internal/obs"
)

// scrapeCounter reads one un-labelled counter's value off /metrics.
func scrapeCounter(t *testing.T, ts *httptest.Server, name string) uint64 {
	t.Helper()
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(line, name+" "), 10, 64)
		if err != nil {
			t.Fatalf("bad %s sample %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("metric %s not in exposition", name)
	return 0
}

// TestTraceparentRoundTrip pins the acceptance seam: an inbound W3C
// traceparent on POST /jobs comes back on the response and reappears
// as the trace ID of the root span in GET /jobs/{id}/trace.
func TestTraceparentRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 1})
	const inTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs", bytes.NewBufferString(
		`{"kind":"sweep","benches":["gamess"],"schemes":["pipeline"],"instructions":40000,"noTelemetry":true}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, "00-"+inTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	outTP := resp.Header.Get(obs.TraceparentHeader)
	if !strings.Contains(outTP, inTrace) {
		t.Fatalf("response traceparent %q does not continue trace %s", outTP, inTrace)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.TraceID != inTrace {
		t.Fatalf("status traceId %q, want %s", st.TraceID, inTrace)
	}

	final := waitState(t, ts, st.ID, 60*time.Second)
	if final.State != jobs.StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}

	// The finished span tree, nested JSON form.
	r, err := http.Get(ts.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", r.StatusCode)
	}
	var tree obs.SpanData
	if err := json.NewDecoder(r.Body).Decode(&tree); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if tree.TraceID != inTrace {
		t.Fatalf("root span trace ID %s, want inbound %s", tree.TraceID, inTrace)
	}
	if tree.Name != "job" || tree.ParentSpanID != "00f067aa0ba902b7" {
		t.Fatalf("root span: %+v", tree)
	}
	if tree.End == nil || len(tree.Children) == 0 {
		t.Fatalf("root span unfinished or childless: %+v", tree)
	}

	// The same trace as JSONL: one parseable span object per line.
	r, err = http.Get(ts.URL + "/jobs/" + st.ID + "/trace?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("jsonl trace status %d", r.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(r.Body)
	r.Body.Close()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("jsonl export has %d spans, want >= 2 (job + attempt)", len(lines))
	}
	for _, ln := range lines {
		var sd obs.SpanData
		if err := json.Unmarshal([]byte(ln), &sd); err != nil {
			t.Fatalf("bad jsonl line %q: %v", ln, err)
		}
		if sd.TraceID != inTrace {
			t.Fatalf("jsonl span on trace %s, want %s", sd.TraceID, inTrace)
		}
	}

	// Unknown job: 404.
	r, err = http.Get(ts.URL + "/jobs/nonesuch/trace")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status %d", r.StatusCode)
	}
	r.Body.Close()
}

// TestReadyz checks the readiness flip: 200 while serving, 503 with
// draining=true once shutdown starts.
func TestReadyz(t *testing.T) {
	ts, svc := newTestServer(t, jobs.Config{Workers: 1})
	check := func(wantCode int, wantDraining bool) {
		t.Helper()
		r, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != wantCode {
			t.Fatalf("readyz status %d, want %d", r.StatusCode, wantCode)
		}
		var st jobs.Stats
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.Draining != wantDraining {
			t.Fatalf("readyz draining=%v, want %v (%+v)", st.Draining, wantDraining, st)
		}
		if st.QueueCapacity == 0 {
			t.Fatalf("readyz reports zero queue capacity: %+v", st)
		}
	}
	check(http.StatusOK, false)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	check(http.StatusServiceUnavailable, true)
}

// TestCancelRaces pins satellite 3: DELETE against queued, running,
// and finished jobs lands each in a terminal state, and the shed/
// cancel counters move exactly once per event.
func TestCancelRaces(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 1, QueueDepth: 1})
	del := func(id string) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	long := `{"kind":"sweep","benches":["gamess"],"schemes":["pipeline"],"instructions":500000000,"noTelemetry":true}`
	quick := `{"kind":"sweep","benches":["gamess"],"schemes":["pipeline"],"instructions":40000,"noTelemetry":true}`

	// One running job (the single worker takes it)...
	_, running := postJob(t, ts, long)
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts, running.ID).State == jobs.StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// ...one queued job filling the depth-1 queue...
	_, queued := postJob(t, ts, long)
	// ...and one shed with 429.
	resp, _ := postJob(t, ts, long)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status %d, want 429", resp.StatusCode)
	}
	if got := scrapeCounter(t, ts, "plp_jobs_shed_total"); got != 1 {
		t.Fatalf("shed counter %d after one 429, want 1", got)
	}

	// Cancel the queued job: terminal immediately, counter moves once
	// even when the DELETE is repeated.
	if code := del(queued.ID); code != http.StatusAccepted {
		t.Fatalf("cancel queued status %d", code)
	}
	if st := getStatus(t, ts, queued.ID); st.State != jobs.StateCanceled {
		t.Fatalf("queued job state %s after cancel", st.State)
	}
	if code := del(queued.ID); code != http.StatusAccepted {
		t.Fatalf("re-cancel canceled status %d", code)
	}
	if got := scrapeCounter(t, ts, "plp_jobs_canceled_total"); got != 1 {
		t.Fatalf("canceled counter %d after queued cancel, want 1", got)
	}

	// Cancel the running job: cooperative stop, then terminal.
	if code := del(running.ID); code != http.StatusAccepted {
		t.Fatalf("cancel running status %d", code)
	}
	if code := del(running.ID); code != http.StatusAccepted {
		t.Fatalf("re-cancel winding-down status %d", code)
	}
	if st := waitState(t, ts, running.ID, 30*time.Second); st.State != jobs.StateCanceled {
		t.Fatalf("running job state %s after cancel", st.State)
	}
	if got := scrapeCounter(t, ts, "plp_jobs_canceled_total"); got != 2 {
		t.Fatalf("canceled counter %d after running cancel, want 2", got)
	}

	// A finished job refuses with 409 and moves nothing.
	_, done := postJob(t, ts, quick)
	if st := waitState(t, ts, done.ID, 60*time.Second); st.State != jobs.StateSucceeded {
		t.Fatalf("quick job finished %s", st.State)
	}
	if code := del(done.ID); code != http.StatusConflict {
		t.Fatalf("cancel finished status %d, want 409", code)
	}
	if got := scrapeCounter(t, ts, "plp_jobs_canceled_total"); got != 2 {
		t.Fatalf("canceled counter %d after refused cancel, want 2", got)
	}
	if got := scrapeCounter(t, ts, "plp_jobs_shed_total"); got != 1 {
		t.Fatalf("shed counter drifted to %d", got)
	}
}

// TestJobsListLimit pins satellite 1's HTTP face: ?limit=N returns the
// N most recent jobs in submit order; a bad limit is a 400.
func TestJobsListLimit(t *testing.T) {
	ts, svc := newTestServer(t, jobs.Config{Workers: 1, QueueDepth: 8})
	quick := `{"kind":"sweep","benches":["gamess"],"schemes":["pipeline"],"instructions":40000,"noTelemetry":true}`
	var ids []string
	for i := 0; i < 3; i++ {
		resp, st := postJob(t, ts, quick)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitState(t, ts, id, 60*time.Second)
	}
	list := func(query string) ([]jobs.Status, int) {
		t.Helper()
		r, err := http.Get(ts.URL + "/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var body struct {
			Jobs []jobs.Status `json:"jobs"`
		}
		if r.StatusCode == http.StatusOK {
			if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
		}
		return body.Jobs, r.StatusCode
	}
	got, code := list("?limit=2")
	if code != http.StatusOK || len(got) != 2 {
		t.Fatalf("limit=2: status %d, %d jobs", code, len(got))
	}
	if got[0].ID != ids[1] || got[1].ID != ids[2] {
		t.Fatalf("limit=2 returned %s,%s; want %s,%s (most recent, submit order)",
			got[0].ID, got[1].ID, ids[1], ids[2])
	}
	if got, code := list(""); code != http.StatusOK || len(got) != 3 {
		t.Fatalf("default list: status %d, %d jobs", code, len(got))
	}
	if got, code := list("?limit=0"); code != http.StatusOK || len(got) != 3 {
		t.Fatalf("limit=0 (everything): status %d, %d jobs", code, len(got))
	}
	for _, bad := range []string{"?limit=-1", "?limit=abc"} {
		if _, code := list(bad); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, code)
		}
	}
	_ = svc
}
