package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"plp/internal/engine"
	"plp/internal/fabric"
	"plp/internal/jobs"
	"plp/internal/metrics"
	"plp/internal/obs"
	"plp/internal/registry"
	"plp/internal/telemetry"
)

// liveRun is one (scheme, bench) run's live view for the legacy
// sparkline endpoints: the sampler streams while the run executes;
// final holds the finished registry record.
type liveRun struct {
	Scheme  string
	Bench   string
	sampler *telemetry.Sampler
	final   *registry.Run
}

// store indexes live runs across all jobs, keyed scheme/bench (a later
// job's run of the same pair supersedes the earlier one in the view).
// All access is mutex-guarded because job workers register runs while
// HTTP handlers read them.
type store struct {
	m *serverMetrics

	mu   sync.Mutex
	runs map[string]*liveRun
}

func newStore(m *serverMetrics) *store {
	return &store{m: m, runs: make(map[string]*liveRun)}
}

// register is wired to jobs.Config.Observe: every engine run any job
// starts lands here.
func (s *store) register(_ string, scheme engine.Scheme, bench string, sampler *telemetry.Sampler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runs[string(scheme)+"/"+bench] = &liveRun{
		Scheme: string(scheme), Bench: bench, sampler: sampler,
	}
	s.m.runsStarted.Inc()
}

// finish is wired to jobs.Config.OnFinish: a succeeded sweep job's
// final runs replace their live views.
func (s *store) finish(j *jobs.Job) {
	res := j.Result()
	if res == nil || res.Sweep == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range res.Sweep.Runs {
		r := &res.Sweep.Runs[i]
		lr, ok := s.runs[r.Key()]
		if !ok {
			lr = &liveRun{Scheme: r.Scheme, Bench: r.Bench}
			s.runs[r.Key()] = lr
		}
		lr.final = r
		s.m.runsCompleted.Inc()
		s.m.runsByScheme.With(r.Scheme).Inc()
		s.m.persistLatency.With(r.Scheme).Set(r.PersistLatency)
	}
	s.m.sweepsDone.Inc()
}

// get returns the run's live view, or nil.
func (s *store) get(scheme, bench string) *liveRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[scheme+"/"+bench]
}

// runStatus is one row of the /runs listing.
type runStatus struct {
	Scheme string `json:"scheme"`
	Bench  string `json:"bench"`
	Done   bool   `json:"done"`
	Cycles uint64 `json:"cycles,omitempty"`
}

// list returns all runs sorted by (bench, scheme).
func (s *store) list() []runStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]runStatus, 0, len(s.runs))
	for _, lr := range s.runs {
		st := runStatus{Scheme: lr.Scheme, Bench: lr.Bench, Done: lr.final != nil}
		if lr.final != nil {
			st.Cycles = lr.final.Cycles
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Scheme < out[j].Scheme
	})
	return out
}

// server binds the job service, the live-run store, and the instance's
// metrics to the HTTP API.
type server struct {
	svc *jobs.Service
	st  *store
	m   *serverMetrics
	tr  *obs.Tracer

	// coord is set when this instance runs the fabric coordinator role
	// (-coordinator): its registration/heartbeat/state endpoints mount
	// on the API mux. worker is set for the worker role (-join): its
	// unit-execution endpoint mounts the same way. Both are assigned
	// before handler() is called.
	coord  *fabric.Coordinator
	worker *fabric.Worker
}

// newServer wires one complete service instance: its own metrics
// registry (shared with the job service it creates), the live-run
// store, and the hook chain. Multiple servers coexist in one process —
// nothing here registers into global state except the one-time expvar
// bridge, which only the first instance wins (see bindExpvar).
func newServer(cfg jobs.Config) *server {
	return newServerWithFabric(cfg, nil)
}

// newServerWithFabric is newServer for a coordinator instance: mkCoord
// (when non-nil) builds the fabric coordinator against this instance's
// metrics registry, and the job service is wired to shard distsweep
// jobs through it.
func newServerWithFabric(cfg jobs.Config, mkCoord func(*metrics.Registry) *fabric.Coordinator) *server {
	m := newServerMetrics()
	st := newStore(m)
	userObserve := cfg.Observe
	cfg.Observe = func(id string, scheme engine.Scheme, bench string, smp *telemetry.Sampler) {
		st.register(id, scheme, bench, smp)
		if userObserve != nil {
			userObserve(id, scheme, bench, smp)
		}
	}
	userFinish := cfg.OnFinish
	cfg.OnFinish = func(j *jobs.Job) {
		st.finish(j)
		if userFinish != nil {
			userFinish(j)
		}
	}
	if cfg.Metrics == nil {
		// The job service adds its queue gauges and retry counter to
		// the same exposition.
		cfg.Metrics = m.reg
	}
	if cfg.Memo != nil {
		m.bindMemo(cfg.Memo)
	}
	if cfg.Traces != nil {
		m.bindTraceStore(cfg.Traces)
	}
	if cfg.Probe != nil {
		m.bindPoolProbe(cfg.Probe)
	}
	if cfg.Tracer == nil {
		// Every server instance traces its jobs by default: the store is
		// bounded (obs.Config zero value → 256 traces) so an idle default
		// costs one map. No logger — the job service logs its own
		// lifecycle edges; a second sink would duplicate each record.
		cfg.Tracer = obs.New(obs.Config{})
	}
	bindExpvar(m)
	var coord *fabric.Coordinator
	if mkCoord != nil {
		coord = mkCoord(m.reg)
		cfg.Fabric = coord
	}
	return &server{svc: jobs.New(cfg), st: st, m: m, tr: cfg.Tracer, coord: coord}
}

// jsonError writes a {"error": ...} body with the given status.
func jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// handler builds the ServeMux: the job API (the service's public
// face), the legacy live-telemetry endpoints, and health.
func (s *server) handler() *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", s.submitJob)
	mux.HandleFunc("GET /jobs", s.listJobs)
	mux.HandleFunc("GET /jobs/{id}", s.getJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.cancelJob)
	mux.HandleFunc("GET /jobs/{id}/result", s.jobResult)
	mux.HandleFunc("GET /jobs/{id}/trace", s.jobTrace)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /readyz", s.readyz)
	mux.Handle("GET /metrics", s.m.reg.Handler())
	// Every instance serves its build fingerprint: the fabric
	// coordinator dials it back as the worker registration compat check,
	// and humans/scripts use it to see what a server can simulate.
	mux.HandleFunc("GET "+fabric.PathVersion, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, fabric.CurrentVersion())
	})
	if s.coord != nil {
		s.coord.Mount(mux)
	}
	if s.worker != nil {
		// Only the unit endpoint: /version is already mounted above.
		mux.HandleFunc("POST "+fabric.PathRun, s.worker.HandleRun)
	}

	mux.HandleFunc("GET /runs", s.legacyRuns)
	mux.HandleFunc("GET /timeseries", s.legacyTimeseries)
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, indexHTML)
	})
	return mux
}

// submitJob accepts a jobs.Spec and enqueues it: 202 with the job's
// status and a Location header, 400 on an invalid spec, 429 when the
// queue is full (load shedding), 503 while draining for shutdown.
func (s *server) submitJob(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		jsonError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	// An inbound W3C traceparent makes the job's span tree part of the
	// caller's distributed trace; a missing or malformed header starts a
	// fresh trace.
	parent, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	j, err := s.svc.SubmitTraced(spec, parent)
	switch {
	case err == nil:
	case errors.Is(err, jobs.ErrInvalidSpec):
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	case errors.Is(err, jobs.ErrQueueFull):
		s.m.jobsRejected.Inc()
		w.Header().Set("Retry-After", "5")
		jsonError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, jobs.ErrDraining):
		jsonError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.m.jobsSubmitted.Inc()
	w.Header().Set("Location", "/jobs/"+j.ID())
	if tp := j.TraceContext().Traceparent(); tp != "" {
		w.Header().Set(obs.TraceparentHeader, tp)
	}
	writeJSON(w, http.StatusAccepted, j.Status(false))
}

// defaultListLimit caps GET /jobs responses when the caller gives no
// ?limit — jobs accumulate for the process lifetime, so an unbounded
// default would grow without end. ?limit=0 asks for everything.
const defaultListLimit = 100

func (s *server) listJobs(w http.ResponseWriter, r *http.Request) {
	limit := defaultListLimit
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			jsonError(w, http.StatusBadRequest, "bad limit %q: want a non-negative integer", raw)
			return
		}
		limit = n
	}
	js := s.svc.List(limit)
	out := make([]jobs.Status, 0, len(js))
	for _, j := range js {
		out = append(out, j.Status(false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *server) getJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.svc.Get(r.PathValue("id"))
	if !ok {
		jsonError(w, http.StatusNotFound, "no such job")
		return
	}
	withTelemetry := r.URL.Query().Get("telemetry") == "1"
	writeJSON(w, http.StatusOK, j.Status(withTelemetry))
}

// cancelJob requests cancellation: 202 with the (possibly already
// terminal) status, 404 for an unknown ID, 409 for a job that already
// succeeded or failed.
func (s *server) cancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	err := s.svc.Cancel(id)
	switch {
	case err == nil:
	case errors.Is(err, jobs.ErrNotFound):
		jsonError(w, http.StatusNotFound, "no such job")
		return
	case errors.Is(err, jobs.ErrFinished):
		jsonError(w, http.StatusConflict, "job already finished")
		return
	default:
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	j, _ := s.svc.Get(id)
	writeJSON(w, http.StatusAccepted, j.Status(false))
}

// jobResult serves the finished payload: 200 with the registry-form
// result for a succeeded job, 409 while it is still queued/running or
// when it finished without a result (failed, canceled), 404 unknown.
func (s *server) jobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.svc.Get(r.PathValue("id"))
	if !ok {
		jsonError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.State()
	if !st.Terminal() {
		jsonError(w, http.StatusConflict, "job %s is %s; poll /jobs/%s until it finishes", j.ID(), st, j.ID())
		return
	}
	res := j.Result()
	if res == nil {
		jsonError(w, http.StatusConflict, "job %s %s without a result: %s", j.ID(), st, j.Status(false).Error)
		return
	}
	data, err := registry.MarshalJobResult(res)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// jobTrace serves a job's span tree: the nested JSON form by default,
// or one span per line with ?format=jsonl. 404 covers both an unknown
// job ID and a trace already evicted from the bounded store.
func (s *server) jobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.svc.Get(id); !ok {
		jsonError(w, http.StatusNotFound, "no such job")
		return
	}
	tree, ok := s.tr.Tree(id)
	if !ok {
		jsonError(w, http.StatusNotFound, "no trace for job %s (untraced or evicted)", id)
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = s.tr.WriteJSONL(id, w)
		return
	}
	writeJSON(w, http.StatusOK, tree)
}

// readyz reports readiness to take new work: 200 with the service's
// queue stats normally, 503 once draining for shutdown — the signal a
// load balancer uses to stop routing before the listener closes.
func (s *server) readyz(w http.ResponseWriter, r *http.Request) {
	st := s.svc.Stats()
	code := http.StatusOK
	if st.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

func (s *server) legacyRuns(w http.ResponseWriter, r *http.Request) {
	// sweepDone mirrors the pre-job-service contract: true once no
	// sweep job is queued or running (the sparkline view stops polling).
	active := false
	for _, j := range s.svc.List(0) {
		if j.Spec().Kind == jobs.KindSweep && !j.State().Terminal() {
			active = true
			break
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sweepDone": !active,
		"runs":      s.st.list(),
	})
}

func (s *server) legacyTimeseries(w http.ResponseWriter, r *http.Request) {
	scheme, bench := r.URL.Query().Get("scheme"), r.URL.Query().Get("bench")
	lr := s.st.get(scheme, bench)
	if lr == nil {
		jsonError(w, http.StatusNotFound, "unknown run (see /runs)")
		return
	}
	resp := struct {
		Scheme string            `json:"scheme"`
		Bench  string            `json:"bench"`
		Done   bool              `json:"done"`
		Cycles uint64            `json:"cycles,omitempty"`
		Series *telemetry.Series `json:"series"`
	}{Scheme: lr.Scheme, Bench: lr.Bench, Done: lr.final != nil}
	if lr.final != nil {
		resp.Cycles = lr.final.Cycles
		resp.Series = lr.final.Telemetry
	} else if lr.sampler != nil {
		snap := lr.sampler.Snapshot()
		resp.Series = &snap
	}
	writeJSON(w, http.StatusOK, resp)
}

// indexHTML is the minimal sparkline view: one row per run, polling
// /timeseries and drawing per-window persists (line) and WPQ max
// occupancy (filled area) as inline SVG.
const indexHTML = `<!doctype html>
<meta charset="utf-8">
<title>plpserve — live telemetry</title>
<style>
 body{font:13px/1.4 system-ui,sans-serif;margin:20px;max-width:1100px}
 h1{font-size:16px} .run{margin:4px 0;display:flex;align-items:center;gap:8px}
 .key{width:220px;font-family:monospace} svg{background:#f6f6f6;border:1px solid #ddd}
 .pend{color:#999} .done{color:#2a7}
</style>
<h1>plpserve — live telemetry (persists/window, WPQ max occupancy)</h1>
<div id="runs"></div>
<script>
async function draw(){
  const {runs, sweepDone} = await (await fetch('/runs')).json();
  const root = document.getElementById('runs');
  for (const run of runs){
    const id = run.scheme + '/' + run.bench;
    let row = document.getElementById(id);
    if (!row){
      row = document.createElement('div'); row.className='run'; row.id=id;
      row.innerHTML = '<span class="key"></span><svg width="600" height="40"></svg><span class="st"></span>';
      root.appendChild(row);
    }
    row.querySelector('.key').textContent = id;
    const st = row.querySelector('.st');
    st.textContent = run.done ? ('done, '+run.cycles+' cycles') : 'running';
    st.className = 'st ' + (run.done ? 'done' : 'pend');
    const ts = await (await fetch('/timeseries?scheme='+run.scheme+'&bench='+run.bench)).json();
    const ws = (ts.series && ts.series.windows) || [];
    if (!ws.length) continue;
    const svg = row.querySelector('svg'), W=600, H=40;
    const maxP = Math.max(1, ...ws.map(w=>w.persists));
    const maxQ = Math.max(1, ...ws.map(w=>w.wpqMax));
    const x = i => i*W/Math.max(1,ws.length-1);
    const occ = ws.map((w,i)=>x(i)+','+(H - w.wpqMax*H/maxQ)).join(' ');
    const per = ws.map((w,i)=>x(i)+','+(H - w.persists*H/maxP)).join(' ');
    svg.innerHTML =
      '<polygon points="0,'+H+' '+occ+' '+W+','+H+'" fill="#cde" stroke="none"/>' +
      '<polyline points="'+per+'" fill="none" stroke="#36c" stroke-width="1.5"/>';
  }
  if (!sweepDone) setTimeout(draw, 1000);
}
draw();
</script>
`
