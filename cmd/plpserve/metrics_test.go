package main

import (
	"expvar"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"plp/internal/harness"
	"plp/internal/jobs"
	"plp/internal/trace"
)

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	var b strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := r.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

// TestMetricsEndpoint is the exposition smoke: run one sweep job to
// completion, then scrape /metrics and assert every key series the
// service promises — job counters, per-scheme run counts, queue
// gauges, retry counter, and the persist-latency quantiles.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 1, QueueDepth: 4})
	_, st := postJob(t, ts,
		`{"kind":"sweep","benches":["gamess"],"schemes":["pipeline"],"instructions":200000,"noTelemetry":true}`)
	if final := waitState(t, ts, st.ID, 60*time.Second); final.State != jobs.StateSucceeded {
		t.Fatalf("sweep finished %s: %s", final.State, final.Error)
	}
	// OnFinish fires after the terminal state is visible; give the
	// store's finish hook a moment to land its counters.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(scrape(t, ts), "plp_sweeps_completed_total 1") {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	got := scrape(t, ts)
	for _, series := range []string{
		"# TYPE plp_jobs_submitted_total counter",
		"plp_jobs_submitted_total 1",
		"plp_jobs_rejected_total 0",
		"plp_jobs_retries_total 0",
		"plp_jobs_queue_depth 0",
		"plp_jobs_queue_capacity 4",
		"plp_runs_started_total 1",
		"plp_runs_completed_total 1",
		"plp_sweeps_completed_total 1",
		`plp_runs_total{scheme="pipeline"} 1`,
		`plp_persist_latency_cycles{scheme="pipeline",quantile="0.5"}`,
		`plp_persist_latency_cycles{scheme="pipeline",quantile="0.99"}`,
		`plp_persist_latency_cycles_count{scheme="pipeline"}`,
	} {
		if !strings.Contains(got, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", got)
	}
}

// TestTwoServersIndependent is the regression for the package-level
// expvar globals: constructing two complete server instances in one
// process must not panic (expvar.NewInt would), and each instance's
// /metrics must count only its own traffic.
func TestTwoServersIndependent(t *testing.T) {
	tsA, _ := newTestServer(t, jobs.Config{Workers: 1, QueueDepth: 2})
	tsB, _ := newTestServer(t, jobs.Config{Workers: 1, QueueDepth: 2})

	spec := `{"kind":"sweep","benches":["gamess"],"schemes":["pipeline"],"instructions":200000,"noTelemetry":true}`
	if resp, _ := postJob(t, tsA, spec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit to A: %d", resp.StatusCode)
	}
	a, b := scrape(t, tsA), scrape(t, tsB)
	if !strings.Contains(a, "plp_jobs_submitted_total 1") {
		t.Errorf("server A did not count its submission:\n%s", a)
	}
	if !strings.Contains(b, "plp_jobs_submitted_total 0") {
		t.Errorf("server B's counters bled from A:\n%s", b)
	}

	// The legacy /debug/vars names survive via the bridge (bound to
	// whichever instance was constructed first in this process — the
	// names exist exactly once and reading them never panics).
	for _, name := range []string{
		"plp_runs_started", "plp_runs_completed", "plp_sweeps_completed",
		"plp_jobs_submitted", "plp_jobs_rejected",
	} {
		if expvar.Get(name) == nil {
			t.Errorf("legacy expvar %q not published", name)
		}
	}
}

// TestMemoMetricsEndpoint: a server with the memoization stack wired
// exposes the memo / trace-cache / pool series, and a repeated sweep
// job is served from the memo (hits > 0, no new misses).
func TestMemoMetricsEndpoint(t *testing.T) {
	memo := harness.NewMemo(0)
	store := trace.NewStore(0)
	ts, _ := newTestServer(t, jobs.Config{
		Workers: 1, QueueDepth: 4,
		Memo: memo, Traces: store, Probe: &harness.PoolProbe{},
	})
	spec := `{"kind":"sweep","benches":["gamess"],"schemes":["pipeline","sp"],"instructions":200000,"warmup":100000,"noTelemetry":true}`
	for i := 0; i < 2; i++ {
		_, st := postJob(t, ts, spec)
		if final := waitState(t, ts, st.ID, 60*time.Second); final.State != jobs.StateSucceeded {
			t.Fatalf("sweep %d finished %s: %s", i, final.State, final.Error)
		}
	}
	got := scrape(t, ts)
	for _, series := range []string{
		"plp_memo_hits_total 2",   // second job: both points hit
		"plp_memo_misses_total 2", // first job: both points executed
		"plp_memo_checkpoint_misses_total 1",
		"plp_memo_checkpoint_hits_total 1",
		"plp_trace_cache_misses_total 1",
		"plp_memo_bytes",
		"plp_memo_entries 2",
		"plp_trace_cache_bytes",
		"plp_pool_queued 0",
		"plp_pool_completed_total 2",
		"plp_pool_max_running",
	} {
		if !strings.Contains(got, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
	st := memo.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("memo stats %+v, want 2 hits / 2 misses", st)
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", got)
	}
}
