package main

import (
	"expvar"
	"sync"
)

// The pre-registry /debug/vars names (plp_runs_started, ...) predate
// the per-instance metrics registry; dashboards may still scrape them.
// expvar's namespace is process-global and Publish panics on a
// duplicate name, so the bridge binds exactly once: the first server
// instance constructed in the process becomes the "default" instance
// whose counters back the legacy names. Later instances are
// /metrics-only — constructing them never touches expvar, which is
// precisely the multi-instance safety the old package-level
// expvar.NewInt globals lacked.
var expvarBridge struct {
	mu sync.Mutex
	m  *serverMetrics
}

func bindExpvar(m *serverMetrics) {
	expvarBridge.mu.Lock()
	defer expvarBridge.mu.Unlock()
	if expvarBridge.m != nil {
		return // first binder wins
	}
	expvarBridge.m = m
	for name, read := range map[string]func(*serverMetrics) uint64{
		"plp_runs_started":     func(m *serverMetrics) uint64 { return m.runsStarted.Value() },
		"plp_runs_completed":   func(m *serverMetrics) uint64 { return m.runsCompleted.Value() },
		"plp_sweeps_completed": func(m *serverMetrics) uint64 { return m.sweepsDone.Value() },
		"plp_jobs_submitted":   func(m *serverMetrics) uint64 { return m.jobsSubmitted.Value() },
		"plp_jobs_rejected":    func(m *serverMetrics) uint64 { return m.jobsRejected.Value() },
	} {
		read := read
		expvar.Publish(name, expvar.Func(func() any {
			expvarBridge.mu.Lock()
			bound := expvarBridge.m
			expvarBridge.mu.Unlock()
			return read(bound)
		}))
	}
}
