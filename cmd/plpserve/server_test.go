package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"plp/internal/jobs"
	"plp/internal/registry"
)

func newTestServer(t *testing.T, cfg jobs.Config) (*httptest.Server, *jobs.Service) {
	t.Helper()
	srv := newServer(cfg)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_, _ = srv.svc.Drain(ctx)
	})
	return ts, srv.svc
}

func postJob(t *testing.T, ts *httptest.Server, spec string) (*http.Response, jobs.Status) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewBufferString(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) jobs.Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %d", id, resp.StatusCode)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobLifecycle drives the full submit -> poll -> result flow over
// HTTP and checks the result parses as a registry job result.
func TestJobLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 1})
	resp, st := postJob(t, ts,
		`{"kind":"sweep","benches":["gamess"],"schemes":["pipeline"],"instructions":200000,"interval":1000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+st.ID {
		t.Fatalf("Location %q for job %s", loc, st.ID)
	}
	if st.State != jobs.StateQueued && st.State != jobs.StateRunning {
		t.Fatalf("fresh job state %s", st.State)
	}

	// Result before completion is a 409.
	if r, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result"); err != nil {
		t.Fatal(err)
	} else {
		if r.StatusCode != http.StatusConflict && r.StatusCode != http.StatusOK {
			t.Fatalf("early result status %d", r.StatusCode)
		}
		r.Body.Close()
	}

	final := waitState(t, ts, st.ID, 60*time.Second)
	if final.State != jobs.StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	if final.TotalRuns != 1 || final.StartedRuns != 1 || len(final.Runs) != 1 {
		t.Fatalf("progress counters: %+v", final)
	}

	// Status with telemetry detail embeds the series.
	r, err := http.Get(ts.URL + "/jobs/" + st.ID + "?telemetry=1")
	if err != nil {
		t.Fatal(err)
	}
	var detailed jobs.Status
	if err := json.NewDecoder(r.Body).Decode(&detailed); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(detailed.Runs) != 1 || detailed.Runs[0].Telemetry == nil {
		t.Fatal("telemetry=1 status has no embedded series")
	}

	r, err = http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", r.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(r.Body)
	r.Body.Close()
	res, err := registry.UnmarshalJobResult(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweep == nil || len(res.Sweep.Runs) != 1 || res.Sweep.Runs[0].Cycles == 0 {
		t.Fatalf("result sweep malformed: %+v", res.Sweep)
	}

	// The legacy live view saw the run too.
	r, err = http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	var legacy struct {
		SweepDone bool        `json:"sweepDone"`
		Runs      []runStatus `json:"runs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&legacy); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if !legacy.SweepDone || len(legacy.Runs) != 1 || !legacy.Runs[0].Done {
		t.Fatalf("legacy /runs: %+v", legacy)
	}
	r, err = http.Get(ts.URL + "/timeseries?scheme=pipeline&bench=gamess")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("legacy /timeseries status %d", r.StatusCode)
	}
	r.Body.Close()
}

// TestJobValidation maps bad specs to 400.
func TestJobValidation(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 1})
	for _, body := range []string{
		`not json`,
		`{"kind":"bogus"}`,
		`{"kind":"sweep","benches":["nonesuch"]}`,
		`{"kind":"sweep","unknownField":1}`,
		`{"kind":"experiment"}`,
	} {
		resp, _ := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if r, err := http.Get(ts.URL + "/jobs/nonesuch"); err != nil {
		t.Fatal(err)
	} else {
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job status %d", r.StatusCode)
		}
		r.Body.Close()
	}
}

// TestJobCancelMidRun submits a long job and cancels it over HTTP.
func TestJobCancelMidRun(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 1})
	_, st := postJob(t, ts,
		`{"kind":"sweep","benches":["gamess"],"schemes":["pipeline"],"instructions":500000000,"noTelemetry":true}`)
	// Wait for the job to actually be running.
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts, st.ID).State == jobs.StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	resp.Body.Close()
	final := waitState(t, ts, st.ID, 30*time.Second)
	if final.State != jobs.StateCanceled {
		t.Fatalf("state %s after cancel", final.State)
	}
	// Result of a canceled job is a 409.
	r, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("canceled result status %d", r.StatusCode)
	}
	r.Body.Close()
	// Cancelling a finished (succeeded/failed) job is a 409; cancelling
	// an unknown one a 404.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/nonesuch", nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestQueueFull429 fills the queue and expects 429 with Retry-After.
func TestQueueFull429(t *testing.T) {
	ts, svc := newTestServer(t, jobs.Config{Workers: 1, QueueDepth: 2})
	// One long job occupies the worker; wait until it leaves the queue
	// so the depth-2 bound is then filled exactly by two more.
	_, first := postJob(t, ts,
		`{"kind":"sweep","benches":["gamess"],"schemes":["pipeline"],"instructions":500000000,"noTelemetry":true}`)
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts, first.ID).State == jobs.StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued")
		}
		time.Sleep(5 * time.Millisecond)
	}
	small := `{"kind":"sweep","benches":["gamess"],"schemes":["pipeline"],"instructions":200000,"noTelemetry":true}`
	for i := 0; i < 2; i++ {
		resp, _ := postJob(t, ts, small)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill %d: status %d", i, resp.StatusCode)
		}
	}
	resp, _ := postJob(t, ts, small)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound submit status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Free the worker so cleanup's drain is quick.
	if err := svc.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentJobsHTTP pushes 8 concurrent jobs through the API,
// cancelling some mid-flight, and then drains gracefully — the
// acceptance scenario, run under -race.
func TestConcurrentJobsHTTP(t *testing.T) {
	ts, svc := newTestServer(t, jobs.Config{Workers: 4, QueueDepth: 16, RunParallel: 1})
	spec := `{"kind":"sweep","benches":["gamess"],"schemes":["pipeline","o3"],"instructions":150000}`
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		resp, st := postJob(t, ts, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	// Cancel the last two while the fleet runs.
	for _, id := range ids[6:] {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	succeeded := 0
	for _, id := range ids {
		st := waitState(t, ts, id, 120*time.Second)
		if st.State == jobs.StateSucceeded {
			succeeded++
			r, err := http.Get(ts.URL + "/jobs/" + id + "/result")
			if err != nil {
				t.Fatal(err)
			}
			if r.StatusCode != http.StatusOK {
				t.Fatalf("job %s result status %d", id, r.StatusCode)
			}
			r.Body.Close()
		}
	}
	if succeeded < 6 {
		t.Fatalf("only %d of 8 jobs succeeded", succeeded)
	}
	// GET /jobs lists all eight.
	r, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []jobs.Status `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(listing.Jobs) != 8 {
		t.Fatalf("listing has %d jobs", len(listing.Jobs))
	}

	// Graceful drain: intake refuses with 503, backlog completes.
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_, err := svc.Drain(ctx)
		drainDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ := postJob(t, ts, spec)
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("during drain: status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never refused intake")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, j := range svc.List(0) {
		if !j.State().Terminal() {
			t.Fatalf("job %s not terminal after drain", j.ID())
		}
	}
}

// TestHealthz checks liveness.
func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 1})
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", r.StatusCode)
	}
	var body map[string]bool
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body["ok"] {
		t.Fatal("healthz not ok")
	}
}

// TestIndexHTML checks the sparkline page still serves.
func TestIndexHTML(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 1})
	r, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("index status %d", r.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(r.Body)
	if !strings.Contains(buf.String(), "live telemetry") {
		t.Fatal("index page content missing")
	}
	// Unknown paths 404 rather than falling through to the index.
	r2, err := http.Get(ts.URL + "/nonesuch")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d", r2.StatusCode)
	}
}
