package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"time"
)

// dialableAddr renders a bound listener address as something another
// process on this machine can dial: a wildcard host (":0",
// "0.0.0.0", "[::]") becomes 127.0.0.1, everything else passes
// through. Fabric workers advertise this form, and the startup
// `addr=` line prints it so scripts can use it verbatim.
func dialableAddr(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return a.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// spawnFabricWorkers forks n copies of this binary as fabric workers
// joined to the coordinator at coordAddr — the single-binary local
// mode that lets CI and laptops exercise the whole coordinator/worker
// path without a deployment. Each child picks its own port (-addr
// 127.0.0.1:0) and prints one `fabric worker pid=` line here so a
// smoke script can SIGKILL a specific child mid-sweep. Children are
// deliberately not restarted when they die: worker loss is the
// re-queue/evict path the fabric exists to survive, and a test that
// kills one should see exactly that.
func spawnFabricWorkers(n int, coordAddr, logLevel, logFormat string) []*exec.Cmd {
	if n <= 0 {
		return nil
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "plpserve: -fabric-workers: %v\n", err)
		os.Exit(1)
	}
	children := make([]*exec.Cmd, 0, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe,
			"-join", coordAddr,
			"-addr", "127.0.0.1:0",
			"-workers", "1",
			"-log-level", logLevel,
			"-log-format", logFormat,
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "plpserve: fabric worker %d: %v\n", i, err)
			stopFabricWorkers(children)
			os.Exit(1)
		}
		fmt.Printf("plpserve: fabric worker pid=%d\n", cmd.Process.Pid)
		children = append(children, cmd)
	}
	return children
}

// stopFabricWorkers terminates forked workers on shutdown: TERM first
// (they drain like any plpserve), KILL any straggler after a grace
// period. Children CI already killed just reap immediately.
func stopFabricWorkers(children []*exec.Cmd) {
	for _, cmd := range children {
		_ = cmd.Process.Signal(os.Interrupt)
	}
	for _, cmd := range children {
		done := make(chan struct{})
		go func(c *exec.Cmd) { _ = c.Wait(); close(done) }(cmd)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	}
}
