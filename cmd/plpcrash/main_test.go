package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"plp/internal/registry"
)

// runCmd invokes the CLI entry point and returns (stdout, stderr, exit).
func runCmd(args ...string) (string, string, int) {
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return out.String(), errw.String(), code
}

func TestRunCleanExitsZero(t *testing.T) {
	out, errs, code := runCmd("run", "-schemes", "pipeline,o3",
		"-instructions", "10000", "-systematic", "16", "-random", "8")
	if code != 0 {
		t.Fatalf("clean campaign exit = %d, stderr %q\n%s", code, errs, out)
	}
	if !strings.Contains(out, "every crash point recovered correctly") {
		t.Errorf("missing all-clear line:\n%s", out)
	}
}

func TestRunFaultExitsNonZeroAndWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	out, _, code := runCmd("run", "-schemes", "pipeline",
		"-instructions", "10000", "-systematic", "32", "-random", "8",
		"-fault-early-root-ack", "-o", path, "-tag", "unit")
	if code != 1 {
		t.Fatalf("fault campaign exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "invariant 2") || !strings.Contains(out, "repro: plpcrash repro") {
		t.Errorf("failure output lacks violation or repro hint:\n%s", out)
	}
	f, err := registry.LoadCrash(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Clean || f.Tag != "unit" || len(f.Schemes) != 1 || len(f.Schemes[0].Failures) == 0 {
		t.Errorf("report on disk inconsistent with the failing run: %+v", f)
	}
}

func TestReproVerdicts(t *testing.T) {
	// A clean triple passes...
	out, _, code := runCmd("repro", "-scheme", "pipeline", "-instructions", "10000", "-crash", "5000")
	if code != 0 || !strings.Contains(out, "crash point recovers correctly") {
		t.Fatalf("clean repro exit = %d:\n%s", code, out)
	}
	// ...and the same triple with the injected bug fails deterministically.
	out1, _, code := runCmd("repro", "-scheme", "pipeline", "-instructions", "10000",
		"-crash", "3730", "-fault-early-root-ack")
	if code != 1 || !strings.Contains(out1, "VIOLATION: invariant 2") {
		t.Fatalf("fault repro exit = %d:\n%s", code, out1)
	}
	out2, _, _ := runCmd("repro", "-scheme", "pipeline", "-instructions", "10000",
		"-crash", "3730", "-fault-early-root-ack")
	if out1 != out2 {
		t.Errorf("repro output not deterministic:\n%s\nvs\n%s", out1, out2)
	}
}

func TestShrinkMinimizesAndPrintsRepro(t *testing.T) {
	out, _, code := runCmd("shrink", "-scheme", "pipeline", "-instructions", "10000",
		"-crash", "3730", "-fault-early-root-ack")
	if code != 1 {
		t.Fatalf("shrink exit = %d:\n%s", code, out)
	}
	for _, want := range []string{"minimal ", "VIOLATION: invariant 2", "repro      plpcrash repro"} {
		if !strings.Contains(out, want) {
			t.Errorf("shrink output lacks %q:\n%s", want, out)
		}
	}
}

func TestBadUsageExitsTwo(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"run", "-schemes", "nosuch"},
		{"repro", "-scheme", "pipeline"},  // missing -crash
		{"shrink", "-scheme", "pipeline"}, // missing -crash
		{"run", "-bench", "nosuch-benchmark-name"}, // unknown profile
	}
	for _, args := range cases {
		if _, _, code := runCmd(args...); code != 2 {
			t.Errorf("plpcrash %v exit = %d, want 2", args, code)
		}
	}
}
