// Command plpcrash drives the crash-injection campaign engine
// (internal/crash): it crashes the timing simulation mid-flight,
// reconstructs what the timed model says had persisted, replays that
// snapshot into the functional secure memory, runs recovery, and
// verifies Invariants 1 & 2 (plus epoch atomicity for the epoch
// persistency schemes).
//
// Usage:
//
//	plpcrash run                                  # default campaign, all 8 schemes
//	plpcrash run -schemes sp,pipeline -random 256 -o report.json
//	plpcrash repro -scheme pipeline -crash 6429 -instructions 20000
//	plpcrash shrink -scheme pipeline -crash 6429 -instructions 20000
//
// run sweeps systematic (persist-completion boundary) plus
// seeded-random crash points per scheme and exits non-zero if any
// point fails; -o writes the machine-readable report. repro re-runs
// one (scheme, trace seed, crash cycle) triple and prints its verdict.
// shrink reduces a failing triple to the minimal store prefix and
// earliest crash cycle that still fail.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"plp/internal/crash"
	"plp/internal/engine"
	"plp/internal/registry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: plpcrash <command> [flags]

commands:
  run     sweep crash points over one or more schemes (campaign)
  repro   re-verify one (scheme, trace seed, crash cycle) triple
  shrink  minimize a failing triple

run 'plpcrash <command> -h' for the command's flags`)
}

func run(args []string, out, errw io.Writer) int {
	if len(args) == 0 {
		usage(errw)
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], out, errw)
	case "repro":
		return cmdRepro(args[1:], out, errw)
	case "shrink":
		return cmdShrink(args[1:], out, errw)
	case "-h", "-help", "--help", "help":
		usage(out)
		return 0
	default:
		fmt.Fprintf(errw, "plpcrash: unknown command %q\n\n", args[0])
		usage(errw)
		return 2
	}
}

// parseSchemes resolves the -schemes flag: "all" or a comma-separated
// subset of the 8 evaluated schemes.
func parseSchemes(spec string) ([]engine.Scheme, error) {
	if spec == "" || spec == "all" {
		return crash.AllSchemes(), nil
	}
	valid := map[engine.Scheme]bool{}
	for _, s := range crash.AllSchemes() {
		valid[s] = true
	}
	var out []engine.Scheme
	for _, name := range strings.Split(spec, ",") {
		s := engine.Scheme(strings.TrimSpace(name))
		if !valid[s] {
			return nil, fmt.Errorf("unknown scheme %q", s)
		}
		out = append(out, s)
	}
	return out, nil
}

func cmdRun(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("plpcrash run", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		schemes = fs.String("schemes", "all", "comma-separated schemes to sweep, or 'all'")
		bench   = fs.String("bench", "gcc", "benchmark profile driving the traces")
		seed    = fs.Uint64("trace-seed", 0, "trace seed override (0 = profile default)")
		instr   = fs.Uint64("instructions", 60_000, "timed instruction window per scheme")
		sys     = fs.Int("systematic", 448, "cap on persist-completion boundary crash points")
		random  = fs.Int("random", 64, "seeded-random crash points per scheme")
		rseed   = fs.Uint64("seed", 1, "seed of the random crash points")
		levels  = fs.Int("levels", crash.DefaultLevels, "BMT levels of the functional memory")
		par     = fs.Int("parallel", 0, "verification workers (0 = NumCPU)")
		fault   = fs.Bool("fault-early-root-ack", false, "inject the early-root-ack ordering bug (campaign must fail)")
		output  = fs.String("o", "", "write the machine-readable JSON report to this path")
		tag     = fs.String("tag", "", "tag recorded in the JSON report")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	selected, err := parseSchemes(*schemes)
	if err != nil {
		fmt.Fprintf(errw, "plpcrash: %v\n", err)
		return 2
	}
	cfg := crash.CampaignConfig{
		Schemes:           selected,
		Bench:             *bench,
		TraceSeed:         *seed,
		Instructions:      *instr,
		Systematic:        *sys,
		Random:            *random,
		Seed:              *rseed,
		Levels:            *levels,
		Parallel:          *par,
		FaultEarlyRootAck: *fault,
	}
	rep, err := crash.RunCampaign(cfg)
	if err != nil {
		fmt.Fprintf(errw, "plpcrash: %v\n", err)
		return 2
	}

	fmt.Fprintf(out, "crash campaign: %s, %d instructions, %d schemes\n\n",
		rep.Bench, rep.Instructions, len(rep.SchemeReports))
	failed := false
	for _, s := range rep.SchemeReports {
		status := "ok"
		if n := len(s.Failures); n > 0 {
			status = fmt.Sprintf("FAILED (%d points, %d violations)", n, s.Violations())
			failed = true
		}
		recov := "n/a"
		if s.Recovery.Finite() {
			recov = s.Recovery.String()
		}
		fmt.Fprintf(out, "%-12s guarantee=%-6s points=%-5d persists=%-6d inflight=%-3d recovery=[%s] %s\n",
			s.Scheme, s.Guarantee, s.Points, s.Persists, s.MaxInFlight, recov, status)
		for i, f := range s.Failures {
			if i >= 3 {
				fmt.Fprintf(out, "    ... and %d more failing points\n", len(s.Failures)-i)
				break
			}
			fmt.Fprintf(out, "    %s\n", f.Case)
			for _, v := range f.Violations {
				fmt.Fprintf(out, "        %s\n", v)
			}
			fmt.Fprintf(out, "        repro: plpcrash repro %s\n", reproFlags(f.Case))
		}
	}

	if *output != "" {
		if err := registry.WriteCrash(*output, rep.RegistryFile(*tag)); err != nil {
			fmt.Fprintf(errw, "plpcrash: %v\n", err)
			return 2
		}
		fmt.Fprintf(out, "\nreport written to %s\n", *output)
	}
	if failed {
		fmt.Fprintln(out, "\nRESULT: invariant violations found")
		return 1
	}
	fmt.Fprintln(out, "\nRESULT: every crash point recovered correctly")
	return 0
}

// caseFlags declares the repro-triple flags shared by repro and shrink.
func caseFlags(fs *flag.FlagSet) (c *crash.Case, levels *int) {
	c = &crash.Case{}
	fs.StringVar((*string)(&c.Scheme), "scheme", "pipeline", "persist scheme of the triple")
	fs.StringVar(&c.Bench, "bench", "gcc", "benchmark profile driving the trace")
	fs.Uint64Var(&c.TraceSeed, "trace-seed", 0, "trace seed override (0 = profile default)")
	fs.Uint64Var(&c.Instructions, "instructions", 60_000, "timed instruction window")
	fs.Uint64Var((*uint64)(&c.CrashAt), "crash", 0, "crash cycle (required)")
	fs.BoolVar(&c.FaultEarlyRootAck, "fault-early-root-ack", false, "inject the early-root-ack ordering bug")
	levels = fs.Int("levels", crash.DefaultLevels, "BMT levels of the functional memory")
	return c, levels
}

// reproFlags renders a case as repro command-line flags.
func reproFlags(c crash.Case) string {
	s := fmt.Sprintf("-scheme %s -bench %s -instructions %d -crash %d",
		c.Scheme, c.Bench, c.Instructions, c.CrashAt)
	if c.TraceSeed != 0 {
		s += fmt.Sprintf(" -trace-seed %d", c.TraceSeed)
	}
	if c.FaultEarlyRootAck {
		s += " -fault-early-root-ack"
	}
	return s
}

func cmdRepro(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("plpcrash repro", flag.ContinueOnError)
	fs.SetOutput(errw)
	c, levels := caseFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if c.CrashAt == 0 {
		fmt.Fprintln(errw, "plpcrash repro: -crash is required (a non-zero crash cycle)")
		return 2
	}
	snap, err := crash.Take(*c)
	if err != nil {
		fmt.Fprintf(errw, "plpcrash: %v\n", err)
		return 2
	}
	v := crash.Check(snap, *levels)

	fmt.Fprintf(out, "case       %s\n", c)
	fmt.Fprintf(out, "guarantee  %s\n", v.Guarantee)
	fmt.Fprintf(out, "persisted  %d tuple persists complete at the crash\n", v.Persisted)
	fmt.Fprintf(out, "in-flight  %d lost with invariant obligations\n", v.InFlight)
	fmt.Fprintf(out, "wpq        %d/%d entries in flight (%d admitted)\n",
		snap.WPQ.InFlight, snap.WPQ.Capacity, snap.WPQ.Admitted)
	if snap.PTT != nil {
		fmt.Fprintf(out, "ptt        %d updates in flight after %d persists\n",
			snap.PTT.InFlight, snap.PTT.Persists)
	}
	if snap.ETT != nil {
		fmt.Fprintf(out, "ett        %d epochs in flight after %d (%d persists)\n",
			snap.ETT.InFlight, snap.ETT.Epochs, snap.ETT.Persists)
	}
	fmt.Fprintf(out, "replayed   %d persists materialized, %d dropped with a torn epoch\n",
		v.Materialized, v.DroppedPartial)
	fmt.Fprintf(out, "recovery   bmtOK=%v macFailures=%d blocksChecked=%d\n",
		v.Recovery.BMTOK, v.Recovery.MACFailures, v.Recovery.BlocksChecked)
	if v.OK() {
		fmt.Fprintln(out, "\nRESULT: crash point recovers correctly")
		return 0
	}
	fmt.Fprintln(out)
	for _, viol := range v.Violations {
		fmt.Fprintf(out, "VIOLATION: %s\n", viol)
	}
	return 1
}

func cmdShrink(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("plpcrash shrink", flag.ContinueOnError)
	fs.SetOutput(errw)
	c, levels := caseFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if c.CrashAt == 0 {
		fmt.Fprintln(errw, "plpcrash shrink: -crash is required (a non-zero crash cycle)")
		return 2
	}
	min, v, err := crash.Shrink(*c, *levels)
	if err != nil {
		fmt.Fprintf(errw, "plpcrash: %v\n", err)
		return 2
	}
	fmt.Fprintf(out, "input      %s\n", c)
	fmt.Fprintf(out, "minimal    %s\n", min)
	fmt.Fprintf(out, "reduced    instructions %d -> %d, crash cycle %d -> %d\n",
		c.Instructions, min.Instructions, c.CrashAt, min.CrashAt)
	for _, viol := range v.Violations {
		fmt.Fprintf(out, "VIOLATION: %s\n", viol)
	}
	fmt.Fprintf(out, "repro      plpcrash repro %s\n", reproFlags(min))
	return 1
}
