// Command plptrace records synthetic workload traces to disk and
// inspects trace files, so experiments can replay identical operation
// streams (or streams produced by external tools) through the
// simulator via `plpsim -trace`. It can also run a short simulation
// with the engine's structured event trace enabled and dump the
// events as JSONL for external analysis.
//
// Usage:
//
//	plptrace -record gamess -ops 1000000 -o gamess.trc
//	plptrace -info gamess.trc
//	plptrace -events gamess -scheme o3 -instr 100000 > events.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"plp/internal/engine"
	"plp/internal/trace"
	"plp/internal/tracefile"
)

func main() {
	var (
		record = flag.String("record", "", "benchmark profile to record")
		ops    = flag.Int("ops", 1_000_000, "operations to record")
		out    = flag.String("o", "trace.trc", "output file")
		info   = flag.String("info", "", "trace file to describe")
		events = flag.String("events", "", "benchmark to simulate with event tracing (JSONL to stdout)")
		scheme = flag.String("scheme", "o3", "scheme for -events")
		instr  = flag.Uint64("instr", 100_000, "instructions for -events")
	)
	flag.Parse()

	switch {
	case *events != "":
		p, ok := trace.ProfileByName(*events)
		if !ok {
			fatalf("unknown benchmark %q", *events)
		}
		if !engine.KnownScheme(engine.Scheme(*scheme)) {
			fatalf("unknown scheme %q", *scheme)
		}
		r, err := writeEvents(os.Stdout, engine.Scheme(*scheme), p, *instr)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "plptrace: %s/%s: %d cycles, %d persists, %d epochs\n",
			*scheme, *events, r.Cycles, r.Persists, r.Epochs)

	case *record != "":
		p, ok := trace.ProfileByName(*record)
		if !ok {
			fatalf("unknown benchmark %q", *record)
		}
		tr := tracefile.Record(p, *ops)
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := tracefile.Write(f, tr.Name, tr.IPC, tr.Ops); err != nil {
			fatalf("write: %v", err)
		}
		st, _ := f.Stat()
		fmt.Printf("recorded %d ops of %s to %s (%d bytes, %.2f bytes/op)\n",
			len(tr.Ops), tr.Name, *out, st.Size(), float64(st.Size())/float64(len(tr.Ops)))

	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		tr, err := tracefile.Read(f)
		if err != nil {
			fatalf("read: %v", err)
		}
		var stores, stack, loads, instrs uint64
		for _, op := range tr.Ops {
			instrs += uint64(op.Gap) + 1
			switch {
			case op.Kind == trace.OpStore && op.Stack:
				stores++
				stack++
			case op.Kind == trace.OpStore:
				stores++
			default:
				loads++
			}
		}
		fmt.Printf("trace        %s\n", *info)
		fmt.Printf("workload     %s (baseline IPC %.2f)\n", tr.Name, tr.IPC)
		fmt.Printf("operations   %d (%d stores, %d loads)\n", len(tr.Ops), stores, loads)
		fmt.Printf("instructions %d\n", instrs)
		if instrs > 0 {
			fmt.Printf("stores PKI   %.2f (stack fraction %.2f)\n",
				float64(stores)/(float64(instrs)/1000), float64(stack)/float64(stores))
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeEvents runs one traced simulation and streams its structured
// events to w as JSONL. Events are emitted in the engine's scheduling
// order, which is fully deterministic (the simulator has no map-order
// or goroutine nondeterminism on this path) — pinned by a golden test.
func writeEvents(w io.Writer, scheme engine.Scheme, p trace.Profile, instr uint64) (engine.Result, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var encErr error
	cfg := engine.Config{Scheme: scheme, Instructions: instr}
	cfg.Trace = func(ev engine.TraceEvent) {
		if err := enc.Encode(ev); err != nil && encErr == nil {
			encErr = err
		}
	}
	r := engine.Run(cfg, p)
	if encErr != nil {
		return r, fmt.Errorf("encode: %w", encErr)
	}
	return r, bw.Flush()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "plptrace: "+format+"\n", args...)
	os.Exit(1)
}
