package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"plp/internal/engine"
	"plp/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

func eventsOutput(t *testing.T) ([]byte, engine.Result) {
	t.Helper()
	p, ok := trace.ProfileByName("gamess")
	if !ok {
		t.Fatal("gamess profile missing")
	}
	var buf bytes.Buffer
	r, err := writeEvents(&buf, engine.SchemeO3, p, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), r
}

// The -events stream must be byte-identical across invocations and
// match the committed golden file (deterministic scheduling order).
func TestWriteEventsGolden(t *testing.T) {
	got, res := eventsOutput(t)
	if again, _ := eventsOutput(t); !bytes.Equal(got, again) {
		t.Fatal("writeEvents output differs between identical invocations")
	}
	if res.Persists == 0 {
		t.Fatal("test run performed no persists; events stream is vacuous")
	}
	golden := filepath.Join("testdata", "events_o3_gamess_20k.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/plptrace -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("writeEvents output differs from golden file %s\n"+
			"(if the timing model changed intentionally, refresh with -update)", golden)
	}
}

// Every line of the stream must be a well-formed event record, and
// the per-kind event counts must match the run's result totals.
func TestWriteEventsWellFormed(t *testing.T) {
	out, res := eventsOutput(t)
	lines := bytes.Split(bytes.TrimSpace(out), []byte("\n"))
	kinds := map[string]int{}
	for i, line := range lines {
		var ev engine.TraceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		kinds[ev.Kind]++
	}
	if kinds["persist"] != int(res.Persists) {
		t.Errorf("stream has %d persist events, result reports %d", kinds["persist"], res.Persists)
	}
	if kinds["epoch"] != int(res.Epochs) {
		t.Errorf("stream has %d epoch events, result reports %d", kinds["epoch"], res.Epochs)
	}
}
