package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runCmd invokes the CLI entry point and returns (stdout, stderr, exit).
func runCmd(args ...string) (string, string, int) {
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return out.String(), errw.String(), code
}

// Every check mode's output is deterministic and pinned by a golden
// file; a correct build exits zero in each mode.
func TestCheckModeGoldens(t *testing.T) {
	for _, mode := range append([]string{"all"}, checkModes...) {
		// Small bounds keep each mode fast; fixed flags keep it pinned.
		got, errs, code := runCmd("-check", mode, "-seeds", "2", "-writes", "32")
		if code != 0 {
			t.Errorf("-check %s exit = %d, stderr %q\n%s", mode, code, errs, got)
			continue
		}
		again, _, _ := runCmd("-check", mode, "-seeds", "2", "-writes", "32")
		if got != again {
			t.Errorf("-check %s output differs between identical invocations", mode)
		}
		golden := filepath.Join("testdata", mode+".golden")
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (run `go test ./cmd/plprecover -update` to create it)", err)
		}
		if got != string(want) {
			t.Errorf("-check %s output differs from %s\n(refresh with -update if the change is intentional)\ngot:\n%s",
				mode, golden, got)
		}
	}
}

// The injected root-update drop is a self-test of the checker: the run
// must flag it and exit non-zero.
func TestInjectedFailureExitsNonZero(t *testing.T) {
	out, _, code := runCmd("-check", "atomic", "-seeds", "1", "-writes", "32", "-inject-drop-root", "5")
	if code != 1 {
		t.Fatalf("injected failure exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "FAILED") || !strings.Contains(out, "BMT verification failed") {
		t.Errorf("injected failure not reported:\n%s", out)
	}
	if !strings.Contains(out, "RESULT: invariant violations found") {
		t.Errorf("missing failing RESULT line:\n%s", out)
	}
}

// The -h text must quote the recovery package defaults, so a reader of
// the flags sees the same numbers Config.fill applies.
func TestHelpSurfacesRecoveryDefaults(t *testing.T) {
	_, errs, _ := runCmd("-h")
	for _, want := range []string{
		"recovery.DefaultWrites = 64",
		"recovery.DefaultBlocks = 256",
		"recovery.DefaultEpochSize = 8",
		"recovery.DefaultLevels = 5",
	} {
		if !strings.Contains(errs, want) {
			t.Errorf("-h output lacks %q:\n%s", want, errs)
		}
	}
}

func TestUnknownCheckModeExitsTwo(t *testing.T) {
	if _, _, code := runCmd("-check", "nosuch"); code != 2 {
		t.Errorf("unknown -check exit = %d, want 2", code)
	}
}
