// Command plprecover runs the crash-recovery checker: randomized
// crash-point fuzzing of the functional secure memory, plus the
// mechanical Table I / Table II validations. A correct build prints
// all-clear; any invariant violation is listed.
//
// Usage:
//
//	plprecover                     # default campaign
//	plprecover -seeds 20 -writes 256 -epoch 16
package main

import (
	"flag"
	"fmt"
	"os"

	"plp/internal/recovery"
)

func main() {
	var (
		seeds  = flag.Int("seeds", 8, "number of independent fuzzing seeds")
		writes = flag.Int("writes", 128, "persists per schedule")
		epoch  = flag.Int("epoch", 8, "epoch size for the OOO-epoch campaign")
		levels = flag.Int("levels", 5, "BMT levels of the functional memory")
	)
	flag.Parse()

	failed := false
	report := func(name string, rep recovery.Report) {
		status := "ok"
		if !rep.OK() {
			status = fmt.Sprintf("FAILED (%d violations)", len(rep.Failures))
			failed = true
		}
		fmt.Printf("%-28s crashes=%-5d persists=%-6d %s\n",
			name, rep.Crashes, rep.Persists, status)
		for _, f := range rep.Failures {
			fmt.Printf("    %s\n", f)
		}
	}

	fmt.Printf("crash-recovery campaign: %d seeds x %d writes, %d-level BMT\n\n",
		*seeds, *writes, *levels)

	for s := 0; s < *seeds; s++ {
		cfg := recovery.Config{Seed: uint64(s), Writes: *writes, Levels: *levels}
		report(fmt.Sprintf("atomic-persists seed=%d", s), recovery.FuzzAtomicPersists(cfg))
		report(fmt.Sprintf("epoch-ooo seed=%d", s), recovery.FuzzEpochOOO(cfg, *epoch))
	}

	fmt.Println()
	report("table-I predictions", recovery.CheckTableI(recovery.Config{Seed: 1, Levels: *levels}))
	report("tuple lattice (16 subsets)", recovery.CheckTupleLattice(recovery.Config{Seed: 1, Levels: *levels}))
	report("root-order violation", recovery.CheckRootOrderViolation(recovery.Config{Seed: 1, Levels: *levels}))

	if failed {
		fmt.Println("\nRESULT: invariant violations found")
		os.Exit(1)
	}
	fmt.Println("\nRESULT: all crash points recovered correctly; all predicted failure classes observed")
}
