// Command plprecover runs the crash-recovery checker: randomized
// crash-point fuzzing of the functional secure memory, plus the
// mechanical Table I / Table II validations. A correct build prints
// all-clear; any invariant violation is listed and the exit status is
// non-zero.
//
// Usage:
//
//	plprecover                     # every check, defaults
//	plprecover -seeds 20 -writes 256 -epoch 16
//	plprecover -check lattice      # one check mode only
//	plprecover -inject-drop-root 5 # must exit non-zero (self-test)
//
// Flag defaults mirror the exported recovery.Default* constants, so
// the fuzzer's own defaults and the command line cannot diverge.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"plp/internal/recovery"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// checkModes lists the -check values in output order.
var checkModes = []string{"atomic", "epoch", "tableI", "lattice", "rootorder"}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("plprecover", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		seeds  = fs.Int("seeds", 8, "number of independent fuzzing seeds")
		writes = fs.Int("writes", recovery.DefaultWrites,
			fmt.Sprintf("persists per schedule (recovery.DefaultWrites = %d)", recovery.DefaultWrites))
		blocks = fs.Int("blocks", recovery.DefaultBlocks,
			fmt.Sprintf("address range in blocks (recovery.DefaultBlocks = %d)", recovery.DefaultBlocks))
		epoch = fs.Int("epoch", recovery.DefaultEpochSize,
			fmt.Sprintf("epoch size for the OOO-epoch campaign (recovery.DefaultEpochSize = %d)", recovery.DefaultEpochSize))
		levels = fs.Int("levels", recovery.DefaultLevels,
			fmt.Sprintf("BMT levels of the functional memory (recovery.DefaultLevels = %d)", recovery.DefaultLevels))
		check = fs.String("check", "all",
			"check mode: all, atomic, epoch, tableI, lattice, rootorder")
		inject = fs.Int("inject-drop-root", 0,
			"drop the BMT root update of the Nth atomic persist (deliberate Invariant 2 break; the run must fail)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	valid := *check == "all"
	for _, m := range checkModes {
		if *check == m {
			valid = true
		}
	}
	if !valid {
		fmt.Fprintf(errw, "plprecover: unknown -check mode %q (want all, %s)\n",
			*check, "atomic, epoch, tableI, lattice, rootorder")
		return 2
	}
	want := func(mode string) bool { return *check == "all" || *check == mode }

	failed := false
	report := func(name string, rep recovery.Report) {
		status := "ok"
		if !rep.OK() {
			status = fmt.Sprintf("FAILED (%d violations)", len(rep.Failures))
			failed = true
		}
		fmt.Fprintf(out, "%-28s crashes=%-5d persists=%-6d %s\n",
			name, rep.Crashes, rep.Persists, status)
		for _, f := range rep.Failures {
			fmt.Fprintf(out, "    %s\n", f)
		}
	}

	fmt.Fprintf(out, "crash-recovery campaign: %d seeds x %d writes, %d-level BMT\n\n",
		*seeds, *writes, *levels)

	base := recovery.Config{Writes: *writes, Blocks: *blocks, Levels: *levels}
	for s := 0; s < *seeds; s++ {
		cfg := base
		cfg.Seed = uint64(s)
		if want("atomic") {
			cfg.InjectDropRoot = *inject
			report(fmt.Sprintf("atomic-persists seed=%d", s), recovery.FuzzAtomicPersists(cfg))
			cfg.InjectDropRoot = 0
		}
		if want("epoch") {
			report(fmt.Sprintf("epoch-ooo seed=%d", s), recovery.FuzzEpochOOO(cfg, *epoch))
		}
	}

	single := base
	single.Seed = 1
	if want("tableI") {
		report("table-I predictions", recovery.CheckTableI(single))
	}
	if want("lattice") {
		report("tuple lattice (16 subsets)", recovery.CheckTupleLattice(single))
	}
	if want("rootorder") {
		report("root-order violation", recovery.CheckRootOrderViolation(single))
	}

	if failed {
		fmt.Fprintln(out, "\nRESULT: invariant violations found")
		return 1
	}
	fmt.Fprintln(out, "\nRESULT: all crash points recovered correctly; all predicted failure classes observed")
	return 0
}
