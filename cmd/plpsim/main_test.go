package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"plp/internal/engine"
	"plp/internal/registry"
	"plp/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

func metricsOutput(t *testing.T) []byte {
	t.Helper()
	prof, ok := trace.ProfileByName("gamess")
	if !ok {
		t.Fatal("gamess profile missing")
	}
	var buf bytes.Buffer
	writeMetrics(&buf, engine.Config{Instructions: 50_000}, prof)
	return buf.Bytes()
}

// The -metrics view must be byte-identical across invocations and
// match the committed golden file: schemes in Table IV order,
// components in reporting order, no map-range nondeterminism.
func TestWriteMetricsGolden(t *testing.T) {
	got := metricsOutput(t)
	if again := metricsOutput(t); !bytes.Equal(got, again) {
		t.Fatal("writeMetrics output differs between identical invocations")
	}
	golden := filepath.Join("testdata", "metrics_gamess_50k.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/plpsim -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("writeMetrics output differs from golden file %s\n"+
			"(if the timing model changed intentionally, refresh with -update)\ngot:\n%s",
			golden, got)
	}
}

// Scheme sections must appear in Table IV order.
func TestWriteMetricsSchemeOrder(t *testing.T) {
	out := string(metricsOutput(t))
	pos := -1
	for _, s := range engine.Schemes() {
		i := strings.Index(out, "\n"+string(s)+": ")
		if i < 0 {
			t.Fatalf("scheme %s missing from -metrics output", s)
		}
		if i < pos {
			t.Fatalf("scheme %s out of Table IV order", s)
		}
		pos = i
	}
}

func TestWriteMetricsJSON(t *testing.T) {
	prof, _ := trace.ProfileByName("gamess")
	var buf bytes.Buffer
	writeMetricsJSON(&buf, engine.Config{Instructions: 50_000}, prof)
	var runs []registry.Run
	if err := json.Unmarshal(buf.Bytes(), &runs); err != nil {
		t.Fatalf("-metrics -json is not valid JSON: %v", err)
	}
	if len(runs) != len(engine.Schemes()) {
		t.Fatalf("got %d runs, want %d", len(runs), len(engine.Schemes()))
	}
	for i, s := range engine.Schemes() {
		if runs[i].Scheme != string(s) {
			t.Errorf("run %d scheme = %s, want %s (Table IV order)", i, runs[i].Scheme, s)
		}
	}
}

func TestWriteResultJSON(t *testing.T) {
	prof, _ := trace.ProfileByName("gamess")
	base := engine.Run(engine.Config{Scheme: engine.SchemeSecureWB, Instructions: 50_000}, prof)
	res := engine.Run(engine.Config{Scheme: engine.SchemeSP, Instructions: 50_000}, prof)
	var buf bytes.Buffer
	writeResultJSON(&buf, res, base, time.Second)
	var out struct {
		Run            registry.Run `json:"run"`
		BaselineCycles uint64       `json:"baselineCycles"`
		Normalized     float64      `json:"normalizedTime"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if out.Run.Scheme != "sp" || out.Run.Cycles != uint64(res.Cycles) {
		t.Fatalf("run = %s/%d cycles, want sp/%d", out.Run.Scheme, out.Run.Cycles, res.Cycles)
	}
	if out.BaselineCycles != uint64(base.Cycles) || out.Normalized <= 1 {
		t.Fatalf("baseline %d / normalized %.3f look wrong (sp should be slower than secure_WB)",
			out.BaselineCycles, out.Normalized)
	}
	var sum uint64
	for _, v := range out.Run.Attribution {
		sum += v
	}
	if sum != out.Run.Cycles {
		t.Fatalf("attribution in JSON sums to %d, cycles = %d", sum, out.Run.Cycles)
	}
}
