// Command plpsim runs one timing simulation: a benchmark profile under
// one of the paper's persist schemes, printing the result and its
// overhead against the secure_WB baseline.
//
// Usage:
//
//	plpsim -scheme coalescing -bench gamess -instr 10000000
//	plpsim -scheme sp -bench gcc -full
//	plpsim -metrics -bench gamess -instr 2000000
//	plpsim -json -scheme o3 -bench gcc          # machine-readable result
//	plpsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"plp/internal/engine"
	"plp/internal/registry"
	"plp/internal/sim"
	"plp/internal/trace"
	"plp/internal/tracefile"
)

func main() {
	var (
		scheme   = flag.String("scheme", "coalescing", "persist scheme: secure_WB, unordered, sp, pipeline, o3, coalescing, sgxtree")
		bench    = flag.String("bench", "gamess", "benchmark profile name")
		instr    = flag.Uint64("instr", 10_000_000, "instructions to simulate")
		full     = flag.Bool("full", false, "persist the stack segment too (full-memory protection)")
		epoch    = flag.Int("epoch", 32, "epoch size in stores (epoch-persistency schemes)")
		wpq      = flag.Int("wpq", 32, "write pending queue entries")
		macLat   = flag.Int("maclat", 40, "MAC latency in processor cycles")
		idealMDC = flag.Bool("ideal-mdc", false, "ideal metadata caches and free MACs")
		warmup   = flag.Uint64("warmup", 0, "cache warmup instructions before the measured region")
		readVer  = flag.Bool("read-verify", false, "model load-side verification traffic (ablation)")
		traceIn  = flag.String("trace", "", "replay a recorded trace file instead of the synthetic generator")
		custom   = flag.String("profile", "", "custom workload spec, e.g. name=kv,ipc=1.2,stores=80,stack=0.1,distinct=30,wb=5")
		metrics  = flag.Bool("metrics", false, "run every scheme on the benchmark and print cycle attribution + latency percentiles")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON (full result incl. attribution and latency percentiles) instead of the text table")
		list     = flag.Bool("list", false, "list benchmark profiles and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmark profiles (Table V calibration targets):")
		for _, p := range trace.Profiles() {
			fmt.Printf("  %-10s IPC=%.2f  storesPKI=%.2f  non-stack=%.2f  epoch-distinct=%.2f  writebacks=%.2f\n",
				p.Name, p.IPC, p.Paper.SpFull, p.Paper.Sp, p.Paper.O3, p.Paper.WBFull)
		}
		return
	}

	var prof trace.Profile
	if *custom != "" {
		var err error
		prof, err = trace.ParseProfileSpec(*custom)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plpsim: %v\n", err)
			os.Exit(1)
		}
	} else {
		var ok bool
		prof, ok = trace.ProfileByName(*bench)
		if !ok && *traceIn == "" {
			fmt.Fprintf(os.Stderr, "plpsim: unknown benchmark %q (use -list)\n", *bench)
			os.Exit(1)
		}
	}

	cfg := engine.Config{
		Scheme:           engine.Scheme(*scheme),
		Instructions:     *instr,
		FullMemory:       *full,
		EpochSize:        *epoch,
		WPQEntries:       *wpq,
		IdealMDC:         *idealMDC,
		Warmup:           *warmup,
		ReadVerification: *readVer,
	}.WithMACLatency(sim.Cycle(*macLat))

	if !engine.KnownScheme(cfg.Scheme) && !*metrics {
		fmt.Fprintf(os.Stderr, "plpsim: unknown scheme %q\n", *scheme)
		os.Exit(1)
	}

	if *metrics {
		if *jsonOut {
			writeMetricsJSON(os.Stdout, cfg, prof)
		} else {
			writeMetrics(os.Stdout, cfg, prof)
		}
		return
	}

	// One arena serves both runs: the baseline warms its big buffers,
	// the measured run reuses them.
	ar := engine.NewArena()
	cfg.Arena = ar
	baseCfg := engine.Config{Scheme: engine.SchemeSecureWB,
		Instructions: *instr, FullMemory: *full, Arena: ar}
	var base, res engine.Result
	var wall time.Duration
	if *traceIn != "" {
		tr := loadTrace(*traceIn)
		base = runTrace(baseCfg, tr)
		start := time.Now()
		res = runTrace(cfg, tr)
		wall = time.Since(start)
	} else {
		base = engine.Run(baseCfg, prof)
		start := time.Now()
		res = engine.Run(cfg, prof)
		wall = time.Since(start)
	}

	if *jsonOut {
		writeResultJSON(os.Stdout, res, base, wall)
		return
	}

	fmt.Printf("benchmark        %s\n", res.Bench)
	fmt.Printf("scheme           %s\n", res.Scheme)
	fmt.Printf("instructions     %d\n", res.Instructions)
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("IPC              %.4f\n", res.IPC)
	fmt.Printf("persists         %d (%.2f per kilo-instruction)\n", res.Persists, res.PPKI)
	if res.Epochs > 0 {
		fmt.Printf("epochs           %d\n", res.Epochs)
	}
	fmt.Printf("BMT node updates %d", res.BMTNodeUpdates)
	if res.BMTUpdatesNoCoal > 0 {
		fmt.Printf(" (coalescing removed %.1f%%)", res.CoalescingReduction()*100)
	}
	fmt.Println()
	fmt.Printf("metadata hits    ctr %.3f  mac %.3f  bmt %.3f\n",
		res.CtrHitRate, res.MACHitRate, res.BMTHitRate)
	fmt.Printf("NVM traffic      %d reads, %d writes\n", res.NVMReads, res.NVMWrites)
	if res.PersistLatency.Count() > 0 {
		fmt.Printf("persist latency  mean=%.0f p50<=%d p99<=%d max=%d cycles\n",
			res.PersistLatency.Mean(), res.PersistLatency.Percentile(50),
			res.PersistLatency.Percentile(99), res.PersistLatency.Max())
	}
	fmt.Printf("normalized time  %.3fx of secure_WB (baseline IPC %.4f)\n",
		float64(res.Cycles)/float64(base.Cycles), base.IPC)
	if s := wall.Seconds(); s > 0 {
		fmt.Printf("simulator speed  %.2fs wall (%.0f persists/s, %.1fM instr/s)\n",
			s, float64(res.Persists)/s, float64(res.Instructions)/s/1e6)
	}
}

// writeMetrics runs every registered scheme on the benchmark and prints
// the observability view: where each scheme's cycles go (the engine's
// per-component attribution) and its persist/epoch latency percentiles.
// Schemes are emitted in registry order (Table IV first) and components in reporting
// order — never by ranging over a map — so the output is deterministic
// (pinned by a golden test).
func writeMetrics(w io.Writer, cfg engine.Config, prof trace.Profile) {
	fmt.Fprintf(w, "benchmark %s, %d instructions\n\n", prof.Name, cfg.Instructions)
	cfg.Arena = engine.NewArena() // shared across the scheme sweep
	for _, s := range engine.Schemes() {
		c := cfg
		c.Scheme = s
		res := engine.Run(c, prof)
		fmt.Fprintf(w, "%s: %d cycles (IPC %.4f)\n", s, res.Cycles, res.IPC)
		fmt.Fprintf(w, "  cycles by cause:")
		for _, comp := range engine.Components() {
			if res.Attribution[comp] == 0 {
				continue
			}
			fmt.Fprintf(w, "  %s %.1f%%", comp, res.Attribution.Share(comp)*100)
		}
		fmt.Fprintln(w)
		if res.PersistLatency.Count() > 0 {
			fmt.Fprintf(w, "  persist latency: mean=%.0f p50<=%d p95<=%d p99<=%d max=%d\n",
				res.PersistLatency.Mean(), res.PersistLatency.Percentile(50),
				res.PersistLatency.Percentile(95), res.PersistLatency.Percentile(99),
				res.PersistLatency.Max())
		}
		if res.WPQWaitLatency.Count() > 0 {
			fmt.Fprintf(w, "  WPQ admission wait: mean=%.0f p99<=%d\n",
				res.WPQWaitLatency.Mean(), res.WPQWaitLatency.Percentile(99))
		}
		if res.EpochLatency.Count() > 0 {
			fmt.Fprintf(w, "  epoch latency: mean=%.0f p50<=%d p95<=%d p99<=%d (%d epochs)\n",
				res.EpochLatency.Mean(), res.EpochLatency.Percentile(50),
				res.EpochLatency.Percentile(95), res.EpochLatency.Percentile(99),
				res.Epochs)
		}
		fmt.Fprintln(w)
	}
}

// writeMetricsJSON is the machine-readable -metrics view: one registry
// record per scheme, in registry order (Table IV first).
func writeMetricsJSON(w io.Writer, cfg engine.Config, prof trace.Profile) {
	runs := make([]registry.Run, 0, len(engine.Schemes()))
	cfg.Arena = engine.NewArena()
	for _, s := range engine.Schemes() {
		c := cfg
		c.Scheme = s
		start := time.Now()
		res := engine.Run(c, prof)
		rec := registry.FromResult(res, nil)
		rec.SetTiming(time.Since(start))
		runs = append(runs, rec)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(runs); err != nil {
		fmt.Fprintf(os.Stderr, "plpsim: %v\n", err)
		os.Exit(1)
	}
}

// writeResultJSON emits one run's full machine-readable result
// (attribution, latency digests) plus its baseline normalization, so
// scripts stop scraping the text table.
func writeResultJSON(w io.Writer, res, base engine.Result, wall time.Duration) {
	out := struct {
		Run            registry.Run `json:"run"`
		BaselineCycles uint64       `json:"baselineCycles"`
		BaselineIPC    float64      `json:"baselineIPC"`
		Normalized     float64      `json:"normalizedTime"`
	}{
		Run:            registry.FromResult(res, nil),
		BaselineCycles: uint64(base.Cycles),
		BaselineIPC:    base.IPC,
	}
	out.Run.SetTiming(wall)
	if base.Cycles > 0 {
		out.Normalized = float64(res.Cycles) / float64(base.Cycles)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "plpsim: %v\n", err)
		os.Exit(1)
	}
}

// loadTrace reads a recorded trace file.
func loadTrace(path string) *tracefile.Trace {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plpsim: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := tracefile.Read(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plpsim: %v\n", err)
		os.Exit(1)
	}
	return tr
}

// runTrace replays tr under cfg.
func runTrace(cfg engine.Config, tr *tracefile.Trace) engine.Result {
	rep, err := tracefile.NewReplayer(tr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plpsim: %v\n", err)
		os.Exit(1)
	}
	return engine.RunSource(cfg, tr.Name, tr.IPC, rep)
}
