package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"plp/internal/engine"
)

// TestRecoveryTable pins the -exp recovery output: the table is pure
// model arithmetic, so it must render every registered scheme with
// exactly the estimates the engine's recovery API computes, and be
// byte-identical across renders.
func TestRecoveryTable(t *testing.T) {
	render := func() string {
		var out, errw bytes.Buffer
		if code := run([]string{"-exp", "recovery"}, &out, &errw); code != 0 {
			t.Fatalf("run exited %d: %s", code, errw.String())
		}
		return out.String()
	}
	got := render()
	if again := render(); again != got {
		t.Fatal("recovery table not deterministic across renders")
	}

	schemes := engine.Schemes()
	if len(schemes) < 12 {
		t.Fatalf("registry has %d schemes, want >= 12", len(schemes))
	}
	lines := strings.Split(got, "\n")
	for _, row := range engine.RecoveryRows(engine.Config{}) {
		cyc := "n/a"
		if row.Estimate.Finite() {
			cyc = fmt.Sprintf("%d", row.Estimate.Cycles)
		}
		want := []string{string(row.Scheme), string(row.Guarantee), string(row.Estimate.Kind),
			fmt.Sprintf("%d", row.Estimate.Nodes), fmt.Sprintf("%d", row.Estimate.Reads), cyc}
		found := false
		for _, line := range lines {
			fields := strings.Fields(line)
			if len(fields) != len(want) {
				continue
			}
			match := true
			for i := range want {
				if fields[i] != want[i] {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("recovery table missing row %v in:\n%s", want, got)
		}
	}
}

// TestUnknownExperiment pins the error path.
func TestUnknownExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &out, &errw); code != 1 {
		t.Fatalf("run exited %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "unknown experiment") {
		t.Fatalf("stderr missing diagnostic: %q", errw.String())
	}
}
