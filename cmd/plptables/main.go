// Command plptables regenerates the paper's evaluation tables and
// figures (Table V, Figs. 8-12, and the §VII sensitivity studies) from
// the timing simulator, printing each as a text table with the paper's
// reference numbers alongside.
//
// Usage:
//
//	plptables                      # every experiment, default length
//	plptables -exp fig8 -full      # one experiment, full-memory mode
//	plptables -instr 100000000     # paper-length runs (slow)
//	plptables -benches gamess,gcc  # restrict the benchmark set
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"plp/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: "+strings.Join(harness.Order(), ", ")+", or all")
		instr   = flag.Uint64("instr", 2_000_000, "instructions per benchmark run (paper: 100M)")
		benches = flag.String("benches", "", "comma-separated benchmark subset (default all 15)")
		full    = flag.Bool("full", false, "full-memory protection (persist stack too)")
		format  = flag.String("format", "text", "output format: text or md")
		outPath = flag.String("o", "", "write output to a file instead of stdout")
	)
	flag.Parse()

	o := harness.Options{Instructions: *instr, FullMemory: *full}
	if *benches != "" {
		o.Benches = strings.Split(*benches, ",")
	}

	drivers := harness.All()
	ids := harness.Order()
	if *exp != "all" {
		if _, ok := drivers[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "plptables: unknown experiment %q\n", *exp)
			os.Exit(1)
		}
		ids = []string{*exp}
	}
	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plptables: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	for _, id := range ids {
		e := drivers[id](o)
		if *format == "md" {
			fmt.Fprintln(out, e.Markdown())
		} else {
			fmt.Fprintln(out, e.String())
		}
	}
}
