// Command plptables regenerates the paper's evaluation tables and
// figures (Table V, Figs. 8-12, the §VII sensitivity studies, and the
// rival-scheme comparisons) from the timing simulator, printing each
// as a text table with the paper's reference numbers alongside.
//
// Usage:
//
//	plptables                      # every experiment, default length
//	plptables -exp fig8 -full      # one experiment, full-memory mode
//	plptables -exp recovery        # recovery-time table (no simulation)
//	plptables -instr 100000000     # paper-length runs (slow)
//	plptables -benches gamess,gcc  # restrict the benchmark set
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"plp/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: flags in, rendered experiments
// out, exit code returned.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("plptables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("exp", "all", "experiment id: "+strings.Join(harness.Order(), ", ")+", or all")
		instr   = fs.Uint64("instr", 2_000_000, "instructions per benchmark run (paper: 100M)")
		benches = fs.String("benches", "", "comma-separated benchmark subset (default all 15)")
		full    = fs.Bool("full", false, "full-memory protection (persist stack too)")
		format  = fs.String("format", "text", "output format: text or md")
		outPath = fs.String("o", "", "write output to a file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	o := harness.Options{Instructions: *instr, FullMemory: *full}
	if *benches != "" {
		o.Benches = strings.Split(*benches, ",")
	}

	drivers := harness.All()
	ids := harness.Order()
	if *exp != "all" {
		if _, ok := drivers[*exp]; !ok {
			fmt.Fprintf(stderr, "plptables: unknown experiment %q\n", *exp)
			return 1
		}
		ids = []string{*exp}
	}
	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "plptables: %v\n", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	for _, id := range ids {
		e := drivers[id](o)
		if *format == "md" {
			fmt.Fprintln(out, e.Markdown())
		} else {
			fmt.Fprintln(out, e.String())
		}
	}
	return 0
}
