// Command plpbench is the performance-regression gate: it records
// simulation sweeps into versioned registry files (BENCH_<tag>.json)
// and compares two registry files, flagging per-benchmark cycle
// deltas beyond a noise threshold. The simulator is deterministic, so
// an unchanged tree reproduces the committed baseline exactly; a
// regression exit (non-zero) means the timing model actually changed.
//
// Usage:
//
//	plpbench record -o BENCH_seed.json -tag seed
//	plpbench record -o /tmp/fresh.json -benches gamess,gcc -schemes sp,coalescing
//	plpbench record -o /tmp/warm.json -warmup 500000 -memo -passes 2
//	plpbench compare BENCH_seed.json /tmp/fresh.json
//	plpbench compare -threshold 0.05 -warn old.json new.json
//	plpbench compare -identical cold.json warm.json
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"
	"time"

	"plp/internal/engine"
	"plp/internal/harness"
	"plp/internal/registry"
	"plp/internal/sim"
	"plp/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "compare":
		compare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  plpbench record  [-o FILE] [-tag TAG] [-instr N] [-warmup N] [-benches a,b]
                   [-schemes s1,s2] [-full] [-interval N] [-parallel N]
                   [-no-telemetry] [-memo] [-memo-mb N] [-trace-cache-mb N]
                   [-passes N]
  plpbench compare [-threshold F] [-warn] [-identical] OLD.json NEW.json
`)
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		out      = fs.String("o", "BENCH.json", "output registry file")
		tag      = fs.String("tag", "", "registry tag (default: derived from -o)")
		instr    = fs.Uint64("instr", 2_000_000, "instructions per benchmark run")
		warmup   = fs.Uint64("warmup", 0, "warm-up instructions per run (untimed cache warm)")
		benches  = fs.String("benches", "", "comma-separated benchmark subset (default all 15)")
		schemes  = fs.String("schemes", "", "comma-separated scheme subset (default the six evaluated)")
		full     = fs.Bool("full", false, "full-memory protection (persist stack too)")
		interval = fs.Uint64("interval", 0, "telemetry window width in cycles (0 = default)")
		parallel = fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
		noTel    = fs.Bool("no-telemetry", false, "skip the time series (headline numbers only)")
		memoOn   = fs.Bool("memo", false, "memoize sweep points (shared trace cache + warm-up checkpoints + result memo)")
		memoMB   = fs.Uint64("memo-mb", 512, "memo byte bound in MB (with -memo)")
		traceMB  = fs.Uint64("trace-cache-mb", 256, "trace batch cache bound in MB (with -memo)")
		passes   = fs.Int("passes", 1, "record the sweep N times (with -memo: pass 1 is cold, later passes hit; the passes are asserted bit-identical)")
	)
	fs.Parse(args)

	o := harness.RecordOptions{
		Options: harness.Options{
			Instructions: *instr,
			Warmup:       *warmup,
			FullMemory:   *full,
			Parallel:     *parallel,
		},
		Interval:    sim.Cycle(*interval),
		NoTelemetry: *noTel,
	}
	if *benches != "" {
		o.Benches = strings.Split(*benches, ",")
	}
	if *schemes != "" {
		for _, s := range strings.Split(*schemes, ",") {
			sch := engine.Scheme(s)
			if !validScheme(sch) {
				fatalf("unknown scheme %q", s)
			}
			o.Schemes = append(o.Schemes, sch)
		}
	}
	if *tag == "" {
		*tag = tagFromPath(*out)
	}
	if *passes < 1 {
		*passes = 1
	}
	if *passes > 1 && !*memoOn {
		fatalf("-passes %d without -memo would just repeat identical cold work", *passes)
	}

	var memo *harness.Memo
	var store *trace.Store
	if *memoOn {
		memo = harness.NewMemo(*memoMB << 20)
		store = trace.NewStore(*traceMB << 20)
		o.Memo, o.Traces = memo, store
	}

	var runs []registry.Run
	var firstRuns []registry.Run
	var coldWall, lastWall time.Duration
	for pass := 1; pass <= *passes; pass++ {
		start := time.Now()
		runs = harness.Record(o)
		wall := time.Since(start)
		if pass == 1 {
			firstRuns, coldWall = runs, wall
		}
		lastWall = wall
		if memo != nil {
			st := memo.Stats()
			fmt.Printf("pass %d/%d: %.2fs wall, memo %d hits / %d misses (%.0f%% hit rate), %d checkpoints built\n",
				pass, *passes, wall.Seconds(), st.Hits, st.Misses, st.HitRate()*100, st.CheckpointMisses)
		} else {
			fmt.Printf("pass %d/%d: %.2fs wall\n", pass, *passes, wall.Seconds())
		}
	}
	if *passes > 1 {
		// The memoization correctness gate: every pass must reproduce
		// pass 1 bit-for-bit (modulo wall clock).
		if !runsIdentical(firstRuns, runs) {
			fatalf("memoized pass diverged from the cold pass: results are not bit-identical")
		}
		fmt.Printf("passes bit-identical; memoized speedup %.2fx (%.2fs cold -> %.2fs warm)\n",
			coldWall.Seconds()/lastWall.Seconds(), coldWall.Seconds(), lastWall.Seconds())
	}

	f := registry.New(*tag, *instr, *full)
	f.Warmup = *warmup
	f.Runs = runs
	if memo != nil {
		st := memo.Stats()
		ts := store.Stats()
		mi := &registry.MemoInfo{
			Passes:           *passes,
			Hits:             st.Hits,
			Misses:           st.Misses,
			HitRate:          st.HitRate(),
			CheckpointHits:   st.CheckpointHits,
			CheckpointMisses: st.CheckpointMisses,
			TraceHits:        ts.Hits,
			TraceMisses:      ts.Misses,
		}
		if *passes > 1 {
			mi.ColdWallNS = uint64(coldWall.Nanoseconds())
			mi.WarmWallNS = uint64(lastWall.Nanoseconds())
			if lastWall > 0 {
				mi.Speedup = float64(coldWall.Nanoseconds()) / float64(lastWall.Nanoseconds())
			}
		}
		f.Memo = mi
	}
	if err := registry.Write(*out, f); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("recorded %d runs (%d instructions each) to %s\n", len(runs), *instr, *out)
	var wallNS, persists uint64
	for _, r := range runs {
		wallNS += r.WallNS
		persists += r.Persists
	}
	if wallNS > 0 {
		fmt.Printf("simulator throughput: %.2fs total wall, %.0f persists/s aggregate\n",
			float64(wallNS)/1e9, float64(persists)/(float64(wallNS)/1e9))
	}
}

// runsIdentical compares two recordings of the same sweep modulo the
// wall-clock fields.
func runsIdentical(a, b []registry.Run) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		x.WallNS, x.StoresPerSec = 0, 0
		y.WallNS, y.StoresPerSec = 0, 0
		if !reflect.DeepEqual(x, y) {
			return false
		}
	}
	return true
}

func compare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	var (
		threshold = fs.Float64("threshold", 0.02, "noise threshold as a fraction (0.02 = 2%)")
		warn      = fs.Bool("warn", false, "report regressions but exit zero (warn-only gate)")
		identical = fs.Bool("identical", false, "require bit-identical runs (modulo wall clock); the memoization gate")
	)
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	oldF, err := registry.Load(fs.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	newF, err := registry.Load(fs.Arg(1))
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("comparing %s (%s) -> %s (%s)\n", fs.Arg(0), oldF.Tag, fs.Arg(1), newF.Tag)
	for _, side := range []struct {
		name string
		f    *registry.File
	}{{fs.Arg(0), oldF}, {fs.Arg(1), newF}} {
		if m := side.f.Memo; m != nil {
			fmt.Printf("%s: memoized recording (%d passes, %.0f%% hit rate", side.name, m.Passes, m.HitRate*100)
			if m.Speedup > 0 {
				fmt.Printf(", %.2fx warm speedup", m.Speedup)
			}
			fmt.Println(")")
		}
	}
	if *identical {
		diffs := registry.Identical(oldF, newF)
		if len(diffs) > 0 {
			for _, d := range diffs {
				fmt.Println("DIFF: " + d)
			}
			fatalf("%d differences; files are not bit-identical", len(diffs))
		}
		fmt.Printf("bit-identical: %d runs match exactly (wall clock ignored)\n", len(oldF.Runs))
		return
	}
	rep := registry.Compare(oldF, newF, *threshold)
	fmt.Print(rep.String())
	if rep.Failed() {
		if *warn {
			fmt.Println("WARN: regressions detected (warn-only mode, exiting 0)")
			return
		}
		os.Exit(1)
	}
	fmt.Println("no regressions.")
}

// validScheme accepts every registered scheme.
func validScheme(s engine.Scheme) bool {
	return engine.KnownScheme(s)
}

// tagFromPath derives a tag from "BENCH_<tag>.json"-shaped paths,
// falling back to the bare filename.
func tagFromPath(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(base, ".json")
	base = strings.TrimPrefix(base, "BENCH_")
	base = strings.TrimPrefix(base, "BENCH")
	if base == "" {
		return "bench"
	}
	return base
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "plpbench: "+format+"\n", args...)
	os.Exit(1)
}
