// Command plpbench is the performance-regression gate: it records
// simulation sweeps into versioned registry files (BENCH_<tag>.json)
// and compares two registry files, flagging per-benchmark cycle
// deltas beyond a noise threshold. The simulator is deterministic, so
// an unchanged tree reproduces the committed baseline exactly; a
// regression exit (non-zero) means the timing model actually changed.
//
// Usage:
//
//	plpbench record -o BENCH_seed.json -tag seed
//	plpbench record -o /tmp/fresh.json -benches gamess,gcc -schemes sp,coalescing
//	plpbench compare BENCH_seed.json /tmp/fresh.json
//	plpbench compare -threshold 0.05 -warn old.json new.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"plp/internal/engine"
	"plp/internal/harness"
	"plp/internal/registry"
	"plp/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "compare":
		compare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  plpbench record  [-o FILE] [-tag TAG] [-instr N] [-benches a,b] [-schemes s1,s2]
                   [-full] [-interval N] [-parallel N] [-no-telemetry]
  plpbench compare [-threshold F] [-warn] OLD.json NEW.json
`)
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		out      = fs.String("o", "BENCH.json", "output registry file")
		tag      = fs.String("tag", "", "registry tag (default: derived from -o)")
		instr    = fs.Uint64("instr", 2_000_000, "instructions per benchmark run")
		benches  = fs.String("benches", "", "comma-separated benchmark subset (default all 15)")
		schemes  = fs.String("schemes", "", "comma-separated scheme subset (default the six evaluated)")
		full     = fs.Bool("full", false, "full-memory protection (persist stack too)")
		interval = fs.Uint64("interval", 0, "telemetry window width in cycles (0 = default)")
		parallel = fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
		noTel    = fs.Bool("no-telemetry", false, "skip the time series (headline numbers only)")
	)
	fs.Parse(args)

	o := harness.RecordOptions{
		Options: harness.Options{
			Instructions: *instr,
			FullMemory:   *full,
			Parallel:     *parallel,
		},
		Interval:    sim.Cycle(*interval),
		NoTelemetry: *noTel,
	}
	if *benches != "" {
		o.Benches = strings.Split(*benches, ",")
	}
	if *schemes != "" {
		for _, s := range strings.Split(*schemes, ",") {
			sch := engine.Scheme(s)
			if !validScheme(sch) {
				fatalf("unknown scheme %q", s)
			}
			o.Schemes = append(o.Schemes, sch)
		}
	}
	if *tag == "" {
		*tag = tagFromPath(*out)
	}

	runs := harness.Record(o)
	f := registry.New(*tag, *instr, *full)
	f.Runs = runs
	if err := registry.Write(*out, f); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("recorded %d runs (%d instructions each) to %s\n", len(runs), *instr, *out)
	var wallNS, persists uint64
	for _, r := range runs {
		wallNS += r.WallNS
		persists += r.Persists
	}
	if wallNS > 0 {
		fmt.Printf("simulator throughput: %.2fs total wall, %.0f persists/s aggregate\n",
			float64(wallNS)/1e9, float64(persists)/(float64(wallNS)/1e9))
	}
}

func compare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	var (
		threshold = fs.Float64("threshold", 0.02, "noise threshold as a fraction (0.02 = 2%)")
		warn      = fs.Bool("warn", false, "report regressions but exit zero (warn-only gate)")
	)
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	oldF, err := registry.Load(fs.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	newF, err := registry.Load(fs.Arg(1))
	if err != nil {
		fatalf("%v", err)
	}
	rep := registry.Compare(oldF, newF, *threshold)
	fmt.Printf("comparing %s (%s) -> %s (%s)\n", fs.Arg(0), oldF.Tag, fs.Arg(1), newF.Tag)
	fmt.Print(rep.String())
	if rep.Failed() {
		if *warn {
			fmt.Println("WARN: regressions detected (warn-only mode, exiting 0)")
			return
		}
		os.Exit(1)
	}
	fmt.Println("no regressions.")
}

// validScheme accepts the evaluated schemes plus the extensions.
func validScheme(s engine.Scheme) bool {
	for _, v := range append(engine.Schemes(),
		engine.SchemeSGXTree, engine.SchemeColocated) {
		if s == v {
			return true
		}
	}
	return false
}

// tagFromPath derives a tag from "BENCH_<tag>.json"-shaped paths,
// falling back to the bare filename.
func tagFromPath(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(base, ".json")
	base = strings.TrimPrefix(base, "BENCH_")
	base = strings.TrimPrefix(base, "BENCH")
	if base == "" {
		return "bench"
	}
	return base
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "plpbench: "+format+"\n", args...)
	os.Exit(1)
}
