// crashrecovery: a mechanical walkthrough of the paper's correctness
// analysis (§III) — what actually happens at recovery when parts of
// the memory tuple (C, γ, M, R) fail to persist (Table I), when tuple
// components persist out of order (Table II), and why the PLP
// optimizations' out-of-order intra-epoch updates remain safe.
//
// Everything here uses real AES encryption, real keyed MACs, and a
// real hash tree: the failures below are observed, not asserted.
//
// Run with: go run ./examples/crashrecovery
package main

import (
	"fmt"

	"plp"
)

func main() {
	fmt.Println("== Table I: recovery failure when one tuple item is missing ==")
	fmt.Println("(each row: persist everything except one item, crash, recover)")
	rep := plp.CheckTableI(plp.FuzzConfig{Seed: 2026})
	if rep.OK() {
		fmt.Println("all four rows observed exactly as the paper predicts:")
		fmt.Println("  missing R → BMT verification failure")
		fmt.Println("  missing M → MAC verification failure")
		fmt.Println("  missing γ → wrong plaintext + BMT & MAC failures")
		fmt.Println("  missing C → wrong plaintext + MAC failure")
	} else {
		fmt.Println("MISMATCHES:", rep.Failures)
	}

	fmt.Println()
	fmt.Println("== Table II: out-of-order BMT root updates break recovery ==")
	rep = plp.CheckRootOrderViolation(plp.FuzzConfig{Seed: 7})
	if rep.OK() {
		fmt.Println("α1→α2 with R2 persisted before R1, crash in between:")
		fmt.Println("  recovery's rebuilt root mismatches the root register → BMT failure detected")
		fmt.Println("  (this is why the `unordered` scheme is not crash recoverable)")
	} else {
		fmt.Println("PROBLEM:", rep.Failures)
	}

	fmt.Println()
	fmt.Println("== Atomic ordered persists: every crash point recovers ==")
	rep = plp.FuzzAtomicPersists(plp.FuzzConfig{Seed: 1, Writes: 100})
	fmt.Printf("crashed after each of %d persists: failures=%d\n", rep.Crashes, len(rep.Failures))

	fmt.Println()
	fmt.Println("== PLP safety: out-of-order updates WITHIN an epoch are fine ==")
	fmt.Println("(tree updates applied in random permutations, crash at each boundary)")
	for _, epochSize := range []int{4, 8, 16} {
		rep = plp.FuzzEpochOOO(plp.FuzzConfig{Seed: 42, Writes: 96}, epochSize)
		fmt.Printf("epoch size %2d: %d boundary crashes, %d persists, failures=%d\n",
			epochSize, rep.Crashes, rep.Persists, len(rep.Failures))
	}
	fmt.Println("common-ancestor updates commute (§IV-B1), so the final root is")
	fmt.Println("order-independent — the property that makes o3 and coalescing legal.")
}
