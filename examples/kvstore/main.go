// kvstore: a crash-recoverable key-value store on secure persistent
// memory — the kind of "persistent data kept in memory data structures
// instead of in files" workload the paper's introduction motivates.
//
// The store maps fixed-size keys to fixed-size values, one entry per
// 64-byte block. Writes within a transaction buffer in the volatile
// domain (epoch persistency); Commit persists the transaction's dirty
// blocks — each a full memory-tuple persist — so a crash never exposes
// a half-applied transaction and never trips integrity verification.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"plp"
)

// entrySize is one KV slot: 16-byte key + 48-byte value = one block.
const (
	keySize   = 16
	valueSize = 48
	slots     = 1024
)

// Store is a fixed-capacity, crash-recoverable KV store.
type Store struct {
	mem *plp.Memory
	// txn is the current transaction's dirty slot set (the epoch).
	txn map[plp.Block]struct{}
}

// NewStore creates a store over a fresh secure memory.
func NewStore(key []byte) (*Store, error) {
	mem, err := plp.NewMemory(plp.MemoryConfig{Key: key})
	if err != nil {
		return nil, err
	}
	return &Store{mem: mem, txn: make(map[plp.Block]struct{})}, nil
}

// slotOf hashes a key to its block (open addressing is elided: the
// example uses distinct-slot keys).
func slotOf(key string) plp.Block {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return plp.Block(h % slots)
}

// Put stages a key-value pair in the current transaction.
func (s *Store) Put(key, value string) error {
	if len(key) > keySize || len(value) > valueSize {
		return fmt.Errorf("kvstore: key/value too large")
	}
	var data plp.BlockData
	copy(data[:keySize], key)
	copy(data[keySize:], value)
	blk := slotOf(key)
	s.mem.Write(blk, data)
	s.txn[blk] = struct{}{}
	return nil
}

// Get returns the value for key ("" if absent), verifying integrity.
func (s *Store) Get(key string) (string, error) {
	data, err := s.mem.Read(slotOf(key))
	if err != nil {
		return "", err // MAC verification failure: tampering
	}
	stored := trimZero(data[:keySize])
	if stored != key {
		return "", nil
	}
	return trimZero(data[keySize:]), nil
}

// Commit persists the transaction (the epoch boundary): every dirty
// slot's memory tuple becomes durable, atomically per block.
func (s *Store) Commit() {
	for blk := range s.txn {
		s.mem.Persist(blk)
		delete(s.txn, blk)
	}
}

// Crash simulates power loss; Recover verifies and reopens the store.
func (s *Store) Crash() { s.mem.Crash() }

// Recover rebuilds on-chip state and verifies the whole store.
func (s *Store) Recover() plp.RecoveryReport {
	s.txn = make(map[plp.Block]struct{})
	return s.mem.Recover()
}

func trimZero(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

func main() {
	store, err := NewStore([]byte("kv-example-key!!"))
	if err != nil {
		log.Fatal(err)
	}

	// Transaction 1: committed before the crash.
	must(store.Put("alice", "balance=300"))
	must(store.Put("bob", "balance=120"))
	store.Commit()
	fmt.Println("txn 1 committed: alice, bob")

	// Transaction 2: staged but NOT committed.
	must(store.Put("carol", "balance=999"))
	fmt.Println("txn 2 staged (uncommitted): carol")

	// Power failure and recovery.
	store.Crash()
	rep := store.Recover()
	fmt.Printf("recovery: clean=%v (blocks checked=%d)\n", rep.Clean(), rep.BlocksChecked)

	for _, k := range []string{"alice", "bob", "carol"} {
		v, err := store.Get(k)
		if err != nil {
			log.Fatalf("integrity failure reading %s: %v", k, err)
		}
		if v == "" {
			fmt.Printf("  %-6s -> (not found — uncommitted transaction rolled back)\n", k)
		} else {
			fmt.Printf("  %-6s -> %s\n", k, v)
		}
	}

	// Update in place and survive another crash.
	must(store.Put("alice", "balance=50"))
	store.Commit()
	store.Crash()
	if rep := store.Recover(); !rep.Clean() {
		log.Fatal("second recovery failed")
	}
	v, _ := store.Get("alice")
	fmt.Printf("after update + crash: alice -> %s\n", v)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
