// designspace: using the simulator the way an architecture study
// would — sweep a design space (epoch size × WPQ entries) for a custom
// workload and find the cheapest configuration that meets a target
// overhead. This is the workflow the library supports beyond
// reproducing the paper's fixed tables.
//
// Run with: go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"plp"
	"plp/internal/trace"
)

func main() {
	// A write-hungry storage-engine-like workload, described as a spec
	// rather than one of the 15 SPEC2006 profiles.
	prof, err := trace.ParseProfileSpec(
		"name=storage-engine,ipc=1.4,stores=70,stack=0.05,distinct=35,wb=3,loads=250,thrash=1")
	if err != nil {
		log.Fatal(err)
	}

	const instr = 2_000_000
	base := simulate(prof, plp.SimConfig{Scheme: plp.SecureWB, Instructions: instr})
	fmt.Printf("workload %s: baseline (no persistency) IPC %.3f\n\n", prof.Name, base.IPC)

	epochSizes := []int{8, 16, 32, 64, 128}
	wpqSizes := []int{8, 16, 32, 64}

	fmt.Printf("%-8s", "epoch\\wpq")
	for _, w := range wpqSizes {
		fmt.Printf("%8d", w)
	}
	fmt.Println()

	type point struct {
		epoch, wpq int
		norm       float64
	}
	best := point{norm: 1e18}
	cheapest := point{norm: 1e18}
	for _, es := range epochSizes {
		fmt.Printf("%-8d", es)
		for _, w := range wpqSizes {
			res := simulate(prof, plp.SimConfig{
				Scheme:       plp.Coalescing,
				Instructions: instr,
				EpochSize:    es,
				WPQEntries:   w,
			})
			norm := float64(res.Cycles) / float64(base.Cycles)
			fmt.Printf("%8.3f", norm)
			p := point{es, w, norm}
			if norm < best.norm {
				best = p
			}
			// "Cheapest acceptable": smallest WPQ meeting <= 8% overhead,
			// preferring small epochs (less work lost on crash).
			if norm <= 1.08 && (p.wpq < cheapest.wpq || cheapest.norm > 1e17 ||
				(p.wpq == cheapest.wpq && p.epoch < cheapest.epoch)) {
				cheapest = p
			}
		}
		fmt.Println()
	}

	fmt.Printf("\nfastest point:            epoch=%d wpq=%d (%.3fx of baseline)\n",
		best.epoch, best.wpq, best.norm)
	if cheapest.norm < 1e17 {
		fmt.Printf("cheapest within 8%%:       epoch=%d wpq=%d (%.3fx)\n",
			cheapest.epoch, cheapest.wpq, cheapest.norm)
		fmt.Println("\n(small epochs bound the re-execution window after a crash;")
		fmt.Println(" small WPQs are cheaper persistent hardware — the sweep shows")
		fmt.Println(" what each costs for this workload.)")
	}
}

// simulate runs one configuration through the session facade.
func simulate(prof plp.Profile, cfg plp.SimConfig) plp.SimResult {
	s, err := plp.NewSession(plp.WithConfig(cfg), plp.WithProfile(prof))
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}
