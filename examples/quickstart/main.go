// Quickstart: the functional secure persistent memory in five minutes.
//
// Demonstrates the core loop a crash-recoverable application lives by:
// write volatile data, persist it (which atomically persists the whole
// memory tuple — ciphertext, counter, MAC, and BMT root), lose power,
// recover, and read verified plaintext back.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"plp"
)

func main() {
	mem, err := plp.NewMemory(plp.MemoryConfig{
		Key: []byte("0123456789abcdef"), // AES-128 processor key
	})
	if err != nil {
		log.Fatal(err)
	}

	// Write a few blocks. Writes land in the volatile (on-chip) domain:
	// nothing is durable yet.
	var ledger plp.BlockData
	copy(ledger[:], "account=42 balance=1000 txn=7")
	mem.Write(plp.Block(0), ledger)

	var journal plp.BlockData
	copy(journal[:], "journal: begin txn=8 amount=250")
	mem.Write(plp.Block(64), journal) // a different 4KB page

	fmt.Printf("dirty blocks before persist: %d\n", mem.DirtyCount())

	// Persist both. Each persist encrypts the block in counter mode,
	// computes its stateful MAC, walks the Bonsai Merkle Tree leaf to
	// root, and commits the complete tuple to the persist domain.
	mem.Persist(plp.Block(0))
	mem.Persist(plp.Block(64))
	fmt.Printf("persists performed: %d, root register: %#x\n",
		mem.Persists, mem.RootRegister())

	// A third write that never persists — it will not survive.
	var scratch plp.BlockData
	copy(scratch[:], "ephemeral scratch data")
	mem.Write(plp.Block(128), scratch)

	// Power failure.
	mem.Crash()
	fmt.Println("crash: volatile domain lost")

	// Recovery rebuilds the integrity tree from persisted counters,
	// compares it against the persistent root register, and verifies
	// every block's MAC.
	rep := mem.Recover()
	fmt.Printf("recovery: BMT ok=%v, blocks checked=%d, MAC failures=%d\n",
		rep.BMTOK, rep.BlocksChecked, len(rep.MACFailures))
	if !rep.Clean() {
		log.Fatal("recovery failed — this should be impossible after atomic persists")
	}

	// Persisted data decrypts and verifies; unpersisted data is gone.
	got, err := mem.Read(plp.Block(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered block 0: %q\n", string(got[:29]))

	gone, _ := mem.Read(plp.Block(128))
	fmt.Printf("unpersisted block 128 is zero after crash: %v\n", gone == plp.BlockData{})
}
