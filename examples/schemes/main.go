// schemes: a quick tour of the timing simulator — run every persist
// mechanism the paper evaluates on one workload and print the cost of
// crash consistency, from the naive strict-persistency baseline to the
// PLP-optimized epoch schemes.
//
// Run with: go run ./examples/schemes [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"plp"
)

func main() {
	bench := "gamess"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	prof, ok := plp.BenchmarkByName(bench)
	if !ok {
		log.Fatalf("unknown benchmark %q (try: gamess, gcc, milc, ...)", bench)
	}

	const instr = 5_000_000
	base := runScheme(prof, plp.SecureWB, instr)
	fmt.Printf("workload %s: %d instructions, baseline (secure_WB) IPC %.3f\n\n",
		prof.Name, instr, base.IPC)
	fmt.Printf("%-11s %-12s %-10s %-8s %s\n", "scheme", "cycles", "normalized", "PPKI", "notes")

	type row struct {
		scheme plp.Scheme
		notes  string
	}
	rows := []row{
		{plp.SecureWB, "write-back baseline, NOT crash recoverable"},
		{plp.Unordered, "write-through, root order unenforced: fast but UNSAFE (Table II)"},
		{plp.SP, "strict persistency, sequential BMT updates"},
		{plp.Pipeline, "PLP 1: pipelined BMT updates (PTT)"},
		{plp.O3, "PLP 2: epoch persistency, OOO updates (ETT)"},
		{plp.Coalescing, "PLP 2+3: OOO + LCA coalescing"},
		{plp.SGXTree, "SGX-style counter tree: whole path persists (§IV-D)"},
		{plp.Colocated, "prior work: co-located data+ctr+MAC, BMT still sequential (§II)"},
	}
	for _, r := range rows {
		res := runScheme(prof, r.scheme, instr)
		norm := float64(res.Cycles) / float64(base.Cycles)
		extra := ""
		if r.scheme == plp.Coalescing {
			extra = fmt.Sprintf(" [%.0f%% fewer BMT node updates]", res.CoalescingReduction()*100)
		}
		fmt.Printf("%-11s %-12d %-10.2f %-8.1f %s%s\n",
			r.scheme, res.Cycles, norm, res.PPKI, r.notes, extra)
	}

	fmt.Println("\nThe paper's story in one table: enforcing Invariant 2 naively (sp)")
	fmt.Println("is ruinous; pipelining recovers most of it under strict persistency;")
	fmt.Println("epoch persistency with OOO + coalescing gets within ~20% of the")
	fmt.Println("no-persistency baseline while remaining crash recoverable.")
}

// runScheme runs one scheme through the session facade.
func runScheme(prof plp.Profile, scheme plp.Scheme, instr uint64) plp.SimResult {
	s, err := plp.NewSession(
		plp.WithProfile(prof),
		plp.WithScheme(scheme),
		plp.WithInstructions(instr),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}
