// diskimage: actually-durable secure memory. The persist domain —
// ciphertext, counters, MACs, and the root register — serializes to a
// file and restores in a fresh process, undergoing the same
// verification as crash recovery. The image never contains plaintext,
// so a stolen or tampered image file is exactly as useless to an
// attacker as the simulated NVM.
//
// Run with: go run ./examples/diskimage
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"plp"
)

func main() {
	dir, err := os.MkdirTemp("", "plp-image")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "nvm.img")
	key := []byte("disk-image-key!!")

	// "First process": write, persist, save the image, exit.
	{
		mem, err := plp.NewMemory(plp.MemoryConfig{Key: key})
		if err != nil {
			log.Fatal(err)
		}
		var d plp.BlockData
		copy(d[:], "state that must outlive the process")
		mem.Write(plp.Block(7), d)
		mem.Persist(plp.Block(7))

		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := mem.SaveImage(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		st, _ := os.Stat(path)
		fmt.Printf("saved image: %s (%d bytes)\n", path, st.Size())
	}

	// The image holds no plaintext.
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("image contains plaintext: %v\n", bytes.Contains(raw, []byte("outlive")))

	// "Second process": restore under the right key.
	{
		mem, err := plp.NewMemory(plp.MemoryConfig{Key: key})
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := mem.LoadImage(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("restore verification clean: %v\n", rep.Clean())
		got, err := mem.Read(plp.Block(7))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recovered: %q\n", string(got[:35]))
	}

	// A thief with the image but the wrong key gets nothing usable.
	{
		mem, _ := plp.NewMemory(plp.MemoryConfig{Key: []byte("wrong-key-entire")})
		f, _ := os.Open(path)
		rep, err := mem.LoadImage(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("restore under wrong key verifies: %v (MAC failures: %d)\n",
			rep.Clean(), len(rep.MACFailures))
	}
}
