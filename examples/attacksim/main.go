// attacksim: the threat model in action. The paper's adversary (§II)
// has physical access to everything off-chip — NVM contents and the
// memory bus — and mounts data tampering, splicing, and counter replay
// attacks. This example mounts each one against the functional secure
// memory and shows which layer of the metadata stack catches it.
//
// Run with: go run ./examples/attacksim
package main

import (
	"fmt"
	"log"

	"plp"
)

func main() {
	mem, err := plp.NewMemory(plp.MemoryConfig{Key: []byte("attack-sim-key!!")})
	if err != nil {
		log.Fatal(err)
	}

	// Victim data.
	write := func(blk plp.Block, s string) {
		var d plp.BlockData
		copy(d[:], s)
		mem.Write(blk, d)
		mem.Persist(blk)
	}
	write(plp.Block(0), "secret: launch code 0000")
	write(plp.Block(1), "role: user")
	write(plp.Block(64), "role: admin") // different page

	fmt.Println("== attack 1: ciphertext tampering (bit flips in NVM) ==")
	mem.TamperCiphertext(plp.Block(0), 0x01)
	if _, err := mem.Read(plp.Block(0)); err != nil {
		fmt.Println("DETECTED by stateful MAC:", err)
	} else {
		log.Fatal("tampering went undetected!")
	}

	fmt.Println()
	fmt.Println("== attack 2: splicing (move valid ciphertext to another address) ==")
	// The attacker swaps the 'user' and 'admin' blocks, hoping the
	// victim reads 'admin' at the user's address.
	if err := mem.SpliceBlocks(plp.Block(1), plp.Block(64)); err != nil {
		log.Fatal(err)
	}
	if _, err := mem.Read(plp.Block(1)); err != nil {
		fmt.Println("DETECTED: address is a MAC input, relocated data rejected:", err)
	} else {
		log.Fatal("splicing went undetected!")
	}
	// Undo for the next act.
	if err := mem.SpliceBlocks(plp.Block(1), plp.Block(64)); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("== attack 3: counter replay (reinstall stale-but-valid state) ==")
	// Snapshot a complete, internally consistent off-chip state...
	snap := mem.SnapshotBlock(plp.Block(64))
	// ...let the victim update the block...
	write(plp.Block(64), "role: none (revoked)")
	// ...and replay the old state: old ciphertext, old MAC, old counter.
	mem.Replay(snap)

	// Per-block verification CANNOT catch this — the stale tuple is
	// self-consistent. This is precisely why counters need freshness
	// protection from the integrity tree.
	if got, err := mem.Read(plp.Block(64)); err == nil {
		fmt.Printf("per-block MAC accepts the stale state: %q\n", string(got[:11]))
	}

	// The Bonsai Merkle Tree root catches it at verification time.
	mem.Crash()
	rep := mem.Recover()
	if !rep.BMTOK {
		fmt.Println("DETECTED by BMT: rebuilt root mismatches the persistent root register")
	} else {
		log.Fatal("replay went undetected — integrity tree failed!")
	}
}
