// bank: durable atomic regions in action — a transfer between two
// accounts that must never be observed half-applied, even across a
// power failure at the worst possible moment.
//
// This is the paper's §III stack assembled end to end: the programmer
// writes a durable atomic region (undo logging, this example); the
// region's persists follow a persistency model; and every persist
// obeys the memory-tuple invariants so the log itself — which lives in
// the same secure memory — recovers correctly.
//
// Run with: go run ./examples/bank
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"plp"
)

const (
	aliceBlk = plp.Block(0)
	bobBlk   = plp.Block(64) // separate page
	logBase  = plp.Block(4096)
)

func balance(mem *plp.Memory, blk plp.Block) uint64 {
	d, err := mem.Read(blk)
	if err != nil {
		log.Fatalf("integrity failure: %v", err)
	}
	return binary.LittleEndian.Uint64(d[0:8])
}

func encode(v uint64) plp.BlockData {
	var d plp.BlockData
	binary.LittleEndian.PutUint64(d[0:8], v)
	return d
}

// transfer moves amount from one account to the other inside a durable
// atomic region. If crashAfterPersists > 0, power is cut after that
// many persists (simulating the worst-case crash).
func transfer(mem *plp.Memory, mgr *plp.TxnManager, amount uint64, crashAfterPersists int) (crashed bool) {
	type cut struct{}
	if crashAfterPersists > 0 {
		n := crashAfterPersists
		mgr.PersistHook = func() {
			n--
			if n == 0 {
				panic(cut{})
			}
		}
		defer func() {
			mgr.PersistHook = nil
			if r := recover(); r != nil {
				if _, ok := r.(cut); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
	}
	must(mgr.Begin())
	a, b := balance(mem, aliceBlk), balance(mem, bobBlk)
	must(mgr.Write(aliceBlk, encode(a-amount)))
	must(mgr.Write(bobBlk, encode(b+amount)))
	must(mgr.Commit())
	return false
}

func main() {
	mem, err := plp.NewMemory(plp.MemoryConfig{Key: []byte("bank-example-key")})
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := plp.NewTxnManager(mem, logBase, 8)
	if err != nil {
		log.Fatal(err)
	}

	// Initial balances, committed durably.
	must(mgr.Begin())
	must(mgr.Write(aliceBlk, encode(1000)))
	must(mgr.Write(bobBlk, encode(200)))
	must(mgr.Commit())
	fmt.Printf("initial: alice=%d bob=%d (total %d)\n",
		balance(mem, aliceBlk), balance(mem, bobBlk), 1200)

	// A successful transfer.
	transfer(mem, mgr, 300, 0)
	fmt.Printf("after transfer of 300: alice=%d bob=%d\n",
		balance(mem, aliceBlk), balance(mem, bobBlk))

	// Now crash at every possible persist point of another transfer and
	// show the invariant: total is always 1200, never a torn state.
	fmt.Println("\ncrashing a 500-transfer at every persist point:")
	for cut := 1; ; cut++ {
		crashed := transfer(mem, mgr, 500, cut)
		if !crashed {
			// The transfer completed before the cut fired: done probing.
			fmt.Printf("  cut %2d: transfer completed (no crash left to take)\n", cut)
			break
		}
		mem.Crash()
		if rep := mem.Recover(); !rep.Clean() {
			log.Fatalf("cut %d: memory recovery failed: %+v", cut, rep)
		}
		out, err := mgr.Recover()
		if err != nil {
			log.Fatal(err)
		}
		a, b := balance(mem, aliceBlk), balance(mem, bobBlk)
		status := "rolled back"
		if !out.RolledBack {
			status = "was durable"
		}
		fmt.Printf("  cut %2d: alice=%-4d bob=%-4d total=%-4d (%s)\n", cut, a, b, a+b, status)
		if a+b != 1200 {
			log.Fatalf("MONEY %s: total %d", map[bool]string{true: "CREATED", false: "DESTROYED"}[a+b > 1200], a+b)
		}
		// Undo any durable transfer so each probe starts from the same state.
		if a != 700 {
			transfer(mem, mgr, ^uint64(0)-(500-1), 0) // transfer -500
		}
	}
	fmt.Printf("\nfinal: alice=%d bob=%d — conservation held at every crash point\n",
		balance(mem, aliceBlk), balance(mem, bobBlk))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
