package plp_test

import (
	"bytes"
	"context"
	"log/slog"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"plp"
)

// TestSessionEquivalence pins that a Session run matches the flat
// Simulate exactly — including when a (never-fired) cancellable
// context installs the engine's cancellation hook.
func TestSessionEquivalence(t *testing.T) {
	prof, ok := plp.BenchmarkByName("gcc")
	if !ok {
		t.Fatal("gcc profile missing")
	}
	cfg := plp.SimConfig{Scheme: plp.Coalescing, Instructions: 100_000}
	//lint:ignore SA1019 comparing the deprecated shim against sessions is this test's purpose
	want := plp.Simulate(cfg, prof)

	s, err := plp.NewSession(
		plp.WithProfile(prof),
		plp.WithScheme(plp.Coalescing),
		plp.WithInstructions(100_000),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("session result differs from Simulate: cycles %d vs %d", got.Cycles, want.Cycles)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hooked, err := plp.NewSession(
		plp.WithProfile(prof),
		plp.WithScheme(plp.Coalescing),
		plp.WithInstructions(100_000),
		plp.WithContext(ctx),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hooked.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("hooked session differs from Simulate: cycles %d vs %d", res.Cycles, want.Cycles)
	}
}

// TestSessionErrors checks configuration mistakes surface as errors
// from NewSession, never panics from Run.
func TestSessionErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []plp.SessionOption
		want string
	}{
		{"no benchmark", nil, "needs a benchmark"},
		{"unknown benchmark", []plp.SessionOption{plp.WithBenchmark("nonesuch")}, "unknown benchmark"},
		{"unknown scheme", []plp.SessionOption{
			plp.WithBenchmark("gcc"), plp.WithScheme("nonesuch")}, "unknown scheme"},
		{"bad config", []plp.SessionOption{
			plp.WithBenchmark("gcc"),
			plp.WithConfig(plp.SimConfig{Scheme: plp.SP, CtrCacheKB: 7})}, "" /* any error */},
		{"nil context", []plp.SessionOption{
			plp.WithBenchmark("gcc"), plp.WithContext(nil)}, "WithContext(nil)"},
	}
	for _, tc := range cases {
		_, err := plp.NewSession(tc.opts...)
		if err == nil {
			t.Errorf("%s: NewSession accepted a bad configuration", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestSessionOptions checks option composition: WithConfig as base,
// narrower options layered on top, accessors reflecting the result.
func TestSessionOptions(t *testing.T) {
	s, err := plp.NewSession(
		plp.WithConfig(plp.SimConfig{Scheme: plp.SP, EpochSize: 64}),
		plp.WithBenchmark("gamess"),
		plp.WithScheme(plp.O3),
		plp.WithInstructions(50_000),
		plp.WithFullMemory(),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.Scheme != plp.O3 || cfg.EpochSize != 64 || cfg.Instructions != 50_000 || !cfg.FullMemory {
		t.Fatalf("config composition: %+v", cfg)
	}
	if s.Benchmark().Name != "gamess" {
		t.Fatalf("benchmark %q", s.Benchmark().Name)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != plp.O3 || res.Bench != "gamess" || res.Cycles == 0 {
		t.Fatalf("run result: %+v", res)
	}
}

// TestSessionCancel checks a cancelled context stops a long run
// promptly and Run reports the context error.
func TestSessionCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := plp.NewSession(
		plp.WithBenchmark("gamess"),
		plp.WithScheme(plp.Pipeline),
		plp.WithInstructions(500_000_000),
		plp.WithContext(ctx),
	)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Run()
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("cancelled run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not stop within 30s")
	}

	// A session whose context is already dead refuses to run at all.
	if _, err := s.Run(); err != context.Canceled {
		t.Fatalf("dead-context run returned %v", err)
	}
}

// TestSessionTracing checks WithTracing delivers the mode's event
// subset without perturbing results, and that NewSession rejects a bad
// tracing configuration instead of letting Run misbehave.
func TestSessionTracing(t *testing.T) {
	base, err := plp.NewSession(
		plp.WithBenchmark("gcc"),
		plp.WithScheme(plp.Coalescing),
		plp.WithInstructions(100_000),
	)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	var events int
	s, err := plp.NewSession(
		plp.WithBenchmark("gcc"),
		plp.WithScheme(plp.Coalescing),
		plp.WithInstructions(100_000),
		plp.WithTracing(plp.TracingConfig{
			Mode: plp.TracingFull,
			Sink: func(plp.TraceEvent) { events++ },
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 || got.Trace.Emitted != uint64(events) {
		t.Fatalf("FULL tracing delivered %d events, stats %+v", events, got.Trace)
	}
	got.Trace = plp.TraceStats{}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tracing perturbed the result: cycles %d vs %d", got.Cycles, want.Cycles)
	}

	_, err = plp.NewSession(
		plp.WithBenchmark("gcc"),
		plp.WithTracing(plp.TracingConfig{Mode: "verbose"}),
	)
	if err == nil || !strings.Contains(err.Error(), "trace mode") {
		t.Fatalf("bad trace mode not rejected: %v", err)
	}
}

// TestSessionTelemetry checks WithTelemetry streams the series.
func TestSessionTelemetry(t *testing.T) {
	sampler := plp.NewTelemetrySampler(1000)
	s, err := plp.NewSession(
		plp.WithBenchmark("gcc"),
		plp.WithScheme(plp.Coalescing),
		plp.WithInstructions(100_000),
		plp.WithTelemetry(sampler),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	snap := sampler.Snapshot()
	if len(snap.Windows) == 0 {
		t.Fatal("telemetry sampler collected no windows")
	}
}

// TestSessionLogger checks WithLogger emits correlated start/finish
// records around a run, a logger-less session stays silent, and
// WithLogger(nil) is a configuration error.
func TestSessionLogger(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, nil))
	s, err := plp.NewSession(
		plp.WithBenchmark("gcc"),
		plp.WithScheme(plp.Coalescing),
		plp.WithInstructions(100_000),
		plp.WithLogger(log),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`msg="run start"`, `msg="run finish"`,
		"bench=gcc", "scheme=coalescing", "cycles=" + strconv.FormatUint(uint64(res.Cycles), 10)} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
	if _, err := plp.NewSession(plp.WithBenchmark("gcc"), plp.WithLogger(nil)); err == nil ||
		!strings.Contains(err.Error(), "WithLogger(nil)") {
		t.Fatalf("WithLogger(nil) error: %v", err)
	}
}
